package analysis

import (
	"go/ast"
	"go/types"
)

// MapRange flags `for … range` over a map whose body performs
// order-sensitive side effects: submitting overlay events, sending on the
// machine model, scheduling engine callbacks, firing signals, detaching
// endpoints — or appending to an order-bearing slice that is never sorted.
// Go randomizes map iteration order per run, so any such loop makes the
// event interleaving differ between two runs of the same seed: the exact
// nondeterminism leak the three-seed replay test exists to catch, and the
// classic one in core/datatap/evpath shutdown and tap fan-out paths.
var MapRange = &Analyzer{
	Name:    "maprange",
	Doc:     "forbid order-sensitive side effects inside map iteration; sort keys first",
	Applies: internalPkg,
	Run:     runMapRange,
}

// orderSinks are method names whose call order is observable in the
// simulation: they enqueue events, transfer simulated bytes, schedule
// callbacks, or release parked processes. The set is an in-repo contract
// shared by sim (At, After, Go, Fire, Signal), cluster (Send, Launch),
// evpath (Submit, CloseBridge), and datatap (Write, Put, TryPut, Requeue,
// RemoveWriter).
var orderSinks = map[string]bool{
	"Submit":       true,
	"Send":         true,
	"Write":        true,
	"At":           true,
	"After":        true,
	"Go":           true,
	"Fire":         true,
	"Signal":       true,
	"Put":          true,
	"TryPut":       true,
	"Requeue":      true,
	"RemoveWriter": true,
	"CloseBridge":  true,
	"Launch":       true,
}

func runMapRange(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, fd := range enclosingFuncs(f) {
			body := fd.Body
			ast.Inspect(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, body, rs)
				return true
			})
		}
	}
}

// checkMapRange reports the first order-sensitive effect in the body of a
// map-range statement (one diagnostic per loop keeps the output readable).
func checkMapRange(pass *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	var reported bool
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !orderSinks[sel.Sel.Name] {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return true // package function, not one of our method sinks
				}
			}
			reported = true
			pass.Reportf(rs.Pos(),
				"map iteration order is nondeterministic, and the loop body calls %s.%s (order-sensitive side effect); iterate sorted keys instead",
				types.ExprString(sel.X), sel.Sel.Name)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) || i >= len(n.Lhs) {
					continue
				}
				target, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Uses[target]
				if obj == nil {
					obj = info.Defs[target]
				}
				if obj == nil || obj.Pos() >= rs.Pos() {
					continue // loop-local accumulator; its order dies with the loop
				}
				if sortedInFunc(info, funcBody, obj) {
					continue
				}
				reported = true
				pass.Reportf(rs.Pos(),
					"map iteration order is nondeterministic, and the loop body appends to %q, which is never sorted; sort the slice (or the map keys) before it carries order",
					target.Name)
				return false
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// sortedInFunc reports whether the function body contains a call into the
// sort or slices packages with obj among the arguments — the "collect keys,
// sort, then iterate" idiom that makes a map-sourced slice deterministic.
func sortedInFunc(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
