package analysis

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"testing"
)

func loadEscapeFixture(t *testing.T) (*Package, *Program) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", "escape"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return pkg, NewProgram([]*Package{pkg})
}

// TestParamEscapes pins each lattice bit to the sink that produces it,
// including the interprocedural case (wrapRetain merely forwards its
// parameter; the EscRetained bit must arrive from retainParam's summary
// through the fixpoint).
func TestParamEscapes(t *testing.T) {
	_, prog := loadEscapeFixture(t)
	cases := []struct {
		fn    string
		param int
		want  Escape
	}{
		{"retainParam", 1, EscRetained},      // struct-field store
		{"retainParam", 0, 0},                // the box is only written through
		{"sendParam", 1, EscChan},            // channel send
		{"sendParam", 0, 0},                  // the channel itself stays put
		{"globalParam", 0, EscGlobal},        // package-level assignment
		{"returnParam", 0, EscReturned},      // returned to caller
		{"captureParam", 0, EscRetained},     // closed over by a FuncLit
		{"methodValueParam", 0, EscRetained}, // bound-method receiver capture
		{"wrapRetain", 1, EscRetained},       // interprocedural, via retainParam
		{"wrapRetain", 0, 0},                 // retainParam doesn't leak the box
		{"pure", 0, 0},                       // read-only use
	}
	for _, c := range cases {
		n := findNode(t, prog, c.fn)
		if c.param >= len(n.ParamEscape) {
			t.Fatalf("%s: no summary for param %d (len %d)", c.fn, c.param, len(n.ParamEscape))
		}
		if got := n.ParamEscape[c.param]; got != c.want {
			t.Errorf("%s param %d: escape %v, want %v", c.fn, c.param, got, c.want)
		}
	}
}

// TestResultEscape: a returned local carries its other escapes into the
// result summary (freshRetained's value is stored into the box before
// being returned).
func TestResultEscape(t *testing.T) {
	_, prog := loadEscapeFixture(t)
	n := findNode(t, prog, "freshRetained")
	if len(n.ResultEscape) != 1 {
		t.Fatalf("freshRetained: %d result summaries, want 1", len(n.ResultEscape))
	}
	if got := n.ResultEscape[0]; got&EscRetained == 0 {
		t.Errorf("freshRetained result: escape %v, want the retained bit", got)
	}
}

// TestAllocEscape: the composite literal in freshRetained inherits its
// binding's fate — retained (struct store) and returned.
func TestAllocEscape(t *testing.T) {
	pkg, prog := loadEscapeFixture(t)
	n := findNode(t, prog, "freshRetained")
	var alloc ast.Expr
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.AND && alloc == nil {
			alloc = u
		}
		return alloc == nil
	})
	if alloc == nil {
		t.Fatalf("no &composite in freshRetained")
	}
	_ = pkg
	got := n.AllocEscape(alloc)
	if got&EscRetained == 0 || got&EscReturned == 0 {
		t.Errorf("freshRetained alloc: escape %v, want retained|return", got)
	}
}

// TestEscapeString covers the message rendering hotalloc embeds in its
// findings.
func TestEscapeString(t *testing.T) {
	cases := []struct {
		e    Escape
		want string
	}{
		{0, "none"},
		{EscReturned, "return"},
		{EscGlobal | EscChan, "global|chan"},
		{EscReturned | EscGlobal | EscChan | EscRetained, "return|global|chan|retained"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("Escape(%d).String() = %q, want %q", c.e, got, c.want)
		}
	}
}
