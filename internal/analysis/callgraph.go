package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The interprocedural half of the dataflow layer: a class-hierarchy-
// analysis (CHA) call graph over every loaded package, plus transitive
// effect summaries the whole-program analyzers consume — "may block
// virtual time", "performs an order-bearing send", "stamps .Epoch on
// parameter i", "may return nil", "dereferences parameter i unguarded".
//
// Resolution rules (documented approximations — this is a convention
// checker, not a verifier):
//
//   - Direct calls and concrete method calls resolve statically.
//   - Interface method calls resolve CHA-style to every module method
//     with that name whose receiver implements the interface.
//   - Calls through function *values* (locals, params, fields) resolve to
//     nothing and are assumed effect-free.
//   - A function literal's body is attributed to its enclosing function,
//     EXCEPT literals passed to a process launcher (Engine.Go/GoAt — the
//     body runs on a fresh simulated process, where blocking is the
//     point) or to a deferred-callback registrar (Engine.At/After/
//     schedule, Schedule.OnCrash — the body runs on the engine goroutine
//     and is a non-blocking *context*, which vtblock checks separately).
type Program struct {
	Pkgs  []*Package
	Funcs map[*types.Func]*FuncNode
	nodes []*FuncNode // build order: pkg path, file, declaration

	methodsByName map[string][]*FuncNode
	// nilsafe holds the type names carrying the `iocheck:nilsafe` doc
	// marker, program-wide — their methods tolerate nil receivers.
	nilsafe map[*types.TypeName]bool
	// heatDone: the lazy heat propagation (heat.go) has run.
	heatDone bool
	// roundsDone: the lazy round-summary fixpoint (roundsummary.go) has
	// run.
	roundsDone bool
}

// NilSafeType reports whether tn carries the iocheck:nilsafe marker.
func (prog *Program) NilSafeType(tn *types.TypeName) bool {
	return prog.nilsafe[tn]
}

// CallSite is one resolved call expression inside a function body.
type CallSite struct {
	Call *ast.CallExpr
	// Callees are the possible module-internal targets (empty for stdlib
	// and unresolvable function values). CHA interface calls have one
	// entry per implementing method.
	Callees []*FuncNode
	// argObjs[i] is the object of argument i when it is a bare
	// identifier, for parameter-summary propagation (nil otherwise).
	argObjs []types.Object
}

// FuncNode is one declared function or method with its summaries.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	id   int

	Sites []*CallSite

	// Blocks: calling this function may reach (*Proc).park — it can
	// block virtual time. blockVia is the witness callee (nil for seeds).
	Blocks   bool
	blockVia *FuncNode

	// OrderEffect: the function transitively performs an order-bearing
	// side effect (one of maprange's orderSinks). orderPrim names the
	// seed's own direct sink call; orderVia the witness callee.
	OrderEffect bool
	orderVia    *FuncNode
	orderPrim   string

	// Per-parameter summaries (indexed like Signature.Params, receiver
	// excluded). StampsEpoch: the callee assigns .Epoch on the argument
	// (directly or through type-switch/assert bindings, transitively).
	// SinksEventData: the argument ends up as the Data field of an
	// evpath-style Event composite literal. DerefsParam: the callee
	// dereferences the argument with no nil comparison anywhere in its
	// body.
	StampsEpoch    []bool
	SinksEventData []bool
	DerefsParam    []bool

	// NilableResult[i]: result i may be a literal nil (transitively).
	NilableResult []bool

	// NilGuarded: a method that opens with a receiver nil-guard or has an
	// empty body — safe to call on a possibly-nil receiver.
	NilGuarded bool

	// Hot: the function runs on the per-event hot path (heat.go; valid
	// after ensureHeat). hotVia is the hot caller that first reached it
	// (nil for roots), forming the HotChain witness.
	Hot    bool
	hotVia *FuncNode

	// Escape summaries (escape.go), receiver excluded like the other
	// per-param summaries. ParamEscape[i]: ways argument i can leave the
	// callee. ResultEscape[i]: ways result i escapes beyond being
	// returned.
	ParamEscape  []Escape
	ResultEscape []Escape

	// Round holds the protocol-lifecycle summaries (roundsummary.go;
	// valid after ensureRounds): issues-request, registers-deadline/
	// retries, dedupes-by-Seq, fence-checks-epoch, applies-state,
	// terminates-round, plus the per-param request-stamp bits the
	// roundflow/roundterm analyzers track values through.
	Round RoundSummary

	// seeds, kept separate so fixpoint recomputation is idempotent
	summariesInit   bool
	seedBlocks      bool
	seedStamps      []bool
	seedSinks       []bool
	seedDerefs      []bool
	seedNilable     []bool
	paramIndex      map[types.Object]int // params and their assert/switch bindings
	guardedParams   map[int]bool         // params nil-compared somewhere in the body
	returnPositions [][]returnExpr
	// localNil marks locals that may hold nil flow-insensitively: assigned
	// a nil literal, declared without an initializer (pointer-typed), or
	// bound by a comma-ok assertion/map-read/channel-receive.
	localNil   map[types.Object]bool
	localCalls map[types.Object][]localSource

	// escape-analysis working state (escape.go): per-local and per-
	// expression escape bits, alloc→local bindings, and the recorded
	// call-argument flows the fixpoint resolves against callee summaries.
	localEsc  map[types.Object]Escape
	exprEsc   map[ast.Expr]Escape
	binds     map[ast.Expr]types.Object
	escFlows  []escFlow
	exprFlows []exprFlow

	// cold-block cache (heat.go).
	coldDone  bool
	coldSpans coldSet
}

type returnExpr struct {
	isNil bool
	call  *ast.CallExpr // single-call return, for nilable propagation
	local types.Object  // returned local variable, for nilable propagation
}

// localSource records where a local variable's value came from, for
// returned-local nilability: `v := f(); return v` is as nilable as f.
type localSource struct {
	call *ast.CallExpr
	idx  int // result index of the call assigned to the local
}

const (
	blocksMarker      = "iocheck:blocks"
	nonblockingMarker = "iocheck:nonblocking"
)

// launcherMethods start a new simulated process; callbackMethods register
// an engine-goroutine callback. Both take the function out of the
// caller's synchronous flow. Matched by method name, same contract style
// as maprange's orderSinks.
var launcherMethods = map[string]bool{"Go": true, "GoAt": true}
var callbackMethods = map[string]bool{"At": true, "After": true, "schedule": true, "OnCrash": true}

// String renders the node as "(T).M", "(*T).M", or "F" for chains.
func (n *FuncNode) String() string {
	sig, _ := n.Obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return "(" + ptr + named.Obj().Name() + ")." + n.Obj.Name()
		}
	}
	return n.Obj.Name()
}

// BlockChain renders the witness path from this function to the blocking
// primitive, e.g. "(*Stone).Submit → (*Stone).handle → (*Proc).Sleep →
// (*Proc).park".
func (n *FuncNode) BlockChain() string {
	var parts []string
	for cur := n; cur != nil && len(parts) < 8; cur = cur.blockVia {
		parts = append(parts, cur.String())
	}
	return strings.Join(parts, " → ")
}

// OrderChain renders the witness path to the order-bearing sink call,
// e.g. "closeAll → (*Bridge).forward → b.q.TryPut".
func (n *FuncNode) OrderChain() string {
	var parts []string
	cur := n
	for ; cur != nil && len(parts) < 8; cur = cur.orderVia {
		parts = append(parts, cur.String())
		if cur.orderVia == nil {
			break
		}
	}
	if cur != nil && cur.orderPrim != "" {
		parts = append(parts, cur.orderPrim)
	}
	return strings.Join(parts, " → ")
}

// NewProgram builds the call graph and runs the summary fixpoint.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:          pkgs,
		Funcs:         make(map[*types.Func]*FuncNode),
		methodsByName: make(map[string][]*FuncNode),
		nilsafe:       make(map[*types.TypeName]bool),
	}
	for _, pkg := range pkgs {
		for name := range collectNilsafeTypes(&Pass{Pkg: pkg}) {
			if tn, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName); ok {
				prog.nilsafe[tn] = true
			}
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg, id: len(prog.nodes)}
				prog.Funcs[obj] = node
				prog.nodes = append(prog.nodes, node)
				if fd.Recv != nil {
					prog.methodsByName[obj.Name()] = append(prog.methodsByName[obj.Name()], node)
				}
			}
		}
	}
	for _, n := range prog.nodes {
		prog.collect(n)
	}
	prog.fixpoint()
	return prog
}

// Node returns the graph node of a declared function object (nil when the
// object is external or bodiless). Instantiated generic methods resolve
// to their declaration.
func (prog *Program) Node(obj *types.Func) *FuncNode {
	if obj == nil {
		return nil
	}
	return prog.Funcs[obj.Origin()]
}

// Callees resolves a call expression (from pkg) to its possible module
// targets: statically for direct and concrete-method calls, CHA-style for
// interface method calls, empty for function values and externals.
func (prog *Program) Callees(pkg *Package, call *ast.CallExpr) []*FuncNode {
	fun := ast.Unparen(call.Fun)
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion, not a call
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			if n := prog.Node(fn); n != nil {
				return []*FuncNode{n}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return prog.implementers(m.Name(), sel.Recv())
			}
			if n := prog.Node(m); n != nil {
				return []*FuncNode{n}
			}
			return nil
		}
		// Qualified identifier: pkgname.Func.
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if n := prog.Node(fn); n != nil {
				return []*FuncNode{n}
			}
		}
	}
	return nil
}

// FuncValue resolves an expression used as a function value — a function
// identifier or a method value like p.unpark — to its node. This is how
// callback registrations (`eng.At(t, gm.tick)`) join the graph.
func (prog *Program) FuncValue(pkg *Package, e ast.Expr) *FuncNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
			return prog.Node(fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.MethodVal {
			if m, ok := sel.Obj().(*types.Func); ok {
				return prog.Node(m)
			}
		}
		if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return prog.Node(fn)
		}
	}
	return nil
}

// implementers is the CHA step: every module method named name whose
// receiver (or its pointer) implements the interface.
func (prog *Program) implementers(name string, iface types.Type) []*FuncNode {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*FuncNode
	for _, cand := range prog.methodsByName[name] {
		sig, _ := cand.Obj.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			continue
		}
		rt := sig.Recv().Type()
		if types.Implements(rt, it) {
			out = append(out, cand)
			continue
		}
		if _, isPtr := rt.(*types.Pointer); !isPtr && types.Implements(types.NewPointer(rt), it) {
			out = append(out, cand)
		}
	}
	return out
}

// deferredCallKind classifies a call site whose function-literal arguments
// must NOT be attributed to the enclosing function.
func deferredCallKind(pkg *Package, call *ast.CallExpr) (launcher, callback bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false, false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
			return false, false
		}
	}
	return launcherMethods[sel.Sel.Name], callbackMethods[sel.Sel.Name]
}

// walkOwnCode visits the nodes of a function body that execute as part of
// the function's own synchronous flow: it descends into function literals
// (conservative: they may be invoked in place) but skips literals handed
// to launchers and callback registrars.
func walkOwnCode(pkg *Package, body ast.Node, visit func(ast.Node) bool) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if !visit(n) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		launcher, callback := deferredCallKind(pkg, call)
		if !launcher && !callback {
			return true
		}
		ast.Inspect(call.Fun, walk)
		for _, a := range call.Args {
			if _, isLit := a.(*ast.FuncLit); isLit {
				continue
			}
			ast.Inspect(a, walk)
		}
		return false
	}
	ast.Inspect(body, walk)
}

// collect computes one node's call sites and summary seeds.
func (prog *Program) collect(n *FuncNode) {
	pkg := n.Pkg
	info := pkg.Info

	// Marker seeds. The blocking root is (*Proc).park — the one primitive
	// every sim wait path funnels through — or an explicit iocheck:blocks
	// marker for code the graph cannot see through.
	typeName, recvName, _ := receiverOf(n.Decl)
	if n.Obj.Name() == "park" && typeName == "Proc" {
		n.seedBlocks = true
	}
	if hasDocMarker(n.Decl.Doc, blocksMarker) {
		n.seedBlocks = true
	}

	sig, _ := n.Obj.Type().(*types.Signature)
	nparams := 0
	nresults := 0
	if sig != nil {
		nparams = sig.Params().Len()
		nresults = sig.Results().Len()
	}
	n.seedStamps = make([]bool, nparams)
	n.seedSinks = make([]bool, nparams)
	n.seedDerefs = make([]bool, nparams)
	n.seedNilable = make([]bool, nresults)
	n.guardedParams = make(map[int]bool)
	n.paramIndex = make(map[types.Object]int)
	n.localNil = make(map[types.Object]bool)
	n.localCalls = make(map[types.Object][]localSource)
	if sig != nil {
		for i := 0; i < nparams; i++ {
			n.paramIndex[sig.Params().At(i)] = i
		}
	}

	// Receiver nil-guard classification, reused from nilrecv's contract.
	if n.Decl.Recv != nil && recvName != "" {
		pass := &Pass{Pkg: pkg}
		n.NilGuarded = opensWithNilGuard(pass, n.Decl, recvName)
	}

	paramAt := func(e ast.Expr) int {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return -1
		}
		obj := info.Uses[id]
		if obj == nil {
			return -1
		}
		if i, ok := n.paramIndex[obj]; ok {
			return i
		}
		return -1
	}

	walkOwnCode(pkg, n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			site := &CallSite{Call: node, Callees: prog.Callees(pkg, node)}
			for _, a := range node.Args {
				var obj types.Object
				if id, ok := ast.Unparen(a).(*ast.Ident); ok {
					obj = info.Uses[id]
				}
				site.argObjs = append(site.argObjs, obj)
			}
			n.Sites = append(n.Sites, site)
			// Order-effect seed: a direct call to an orderSinks method.
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok && orderSinks[sel.Sel.Name] {
				isPkgFunc := false
				if id, ok := sel.X.(*ast.Ident); ok {
					if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
						isPkgFunc = true
					}
				}
				if !isPkgFunc && n.orderPrim == "" {
					n.orderPrim = types.ExprString(sel.X) + "." + sel.Sel.Name
				}
			}
		case *ast.ValueSpec:
			n.recordSpecSources(info, node)
		case *ast.AssignStmt:
			n.recordAssignSources(info, node)
			// Epoch-stamp seed: `p.Epoch = …` on a parameter or one of its
			// type-switch/assert bindings (registered below via Implicits/
			// Defs before this assignment is reached — handled by a second
			// look at paramIndex which aliases share).
			for _, lhs := range node.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Epoch" {
					continue
				}
				if i := paramAt(sel.X); i >= 0 {
					n.seedStamps[i] = true
				}
			}
			// Alias registration: q := p.(*T) binds q to param p.
			if len(node.Rhs) == 1 {
				if ta, ok := node.Rhs[0].(*ast.TypeAssertExpr); ok && ta.Type != nil {
					if i := paramAt(ta.X); i >= 0 && len(node.Lhs) >= 1 {
						if id, ok := node.Lhs[0].(*ast.Ident); ok {
							if obj := info.Defs[id]; obj != nil {
								n.paramIndex[obj] = i
							}
						}
					}
				}
			}
		case *ast.TypeSwitchStmt:
			// switch m := p.(type): each case clause's implicit binding
			// aliases the parameter.
			if as, ok := node.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
				if ta, ok := as.Rhs[0].(*ast.TypeAssertExpr); ok {
					if i := paramAt(ta.X); i >= 0 {
						for _, st := range node.Body.List {
							if cc, ok := st.(*ast.CaseClause); ok {
								if obj := info.Implicits[cc]; obj != nil {
									n.paramIndex[obj] = i
								}
							}
						}
					}
				}
			}
		case *ast.CompositeLit:
			// Event-data sink seed: Event{…, Data: p}.
			if isEventLit(info, node) {
				for _, elt := range node.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Data" {
						continue
					}
					if i := paramAt(kv.Value); i >= 0 {
						n.seedSinks[i] = true
					}
				}
			}
		case *ast.BinaryExpr:
			// A nil comparison of a parameter anywhere disarms the
			// unguarded-deref summary for it.
			if isNilCompare(node) {
				if i := paramAt(node.X); i >= 0 {
					n.guardedParams[i] = true
				}
				if i := paramAt(node.Y); i >= 0 {
					n.guardedParams[i] = true
				}
			}
		case *ast.SelectorExpr:
			// Deref seed: p.f on a pointer parameter. Method values/calls
			// on p also dereference unless the method is nil-guarded —
			// resolved later; here only field selections count, which
			// keeps the seed independent of fixpoint order.
			if i := paramAt(node.X); i >= 0 {
				if isFieldSelect(info, node) && isPointerParam(sig, i) {
					n.seedDerefs[i] = true
				}
			}
		case *ast.StarExpr:
			if i := paramAt(node.X); i >= 0 {
				n.seedDerefs[i] = true
			}
		case *ast.ReturnStmt:
			var row []returnExpr
			for _, r := range node.Results {
				re := returnExpr{}
				if id, ok := ast.Unparen(r).(*ast.Ident); ok {
					if isNilIdent(info, id) {
						re.isNil = true
					} else if obj := info.Uses[id]; obj != nil {
						if _, isParam := n.paramIndex[obj]; !isParam {
							re.local = obj
						}
					}
				}
				if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
					re.call = call
				}
				row = append(row, re)
			}
			n.returnPositions = append(n.returnPositions, row)
		}
		return true
	})

	// Direct nil-return seeds. A single-expression `return f()` defers to
	// the fixpoint; explicit nils seed here.
	for _, row := range n.returnPositions {
		if len(row) == nresults {
			for i, re := range row {
				if re.isNil {
					n.seedNilable[i] = true
				}
			}
		}
	}

	n.seedEscapes(prog)
}

// recordAssignSources notes where locals get their values, for the
// returned-local nilability seeds: nil literals, comma-ok bindings, and
// call results.
func (n *FuncNode) recordAssignSources(info *types.Info, as *ast.AssignStmt) {
	objAt := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if !errorPairedCall(info, call) {
				for i, l := range as.Lhs {
					if obj := objAt(l); obj != nil {
						n.localCalls[obj] = append(n.localCalls[obj], localSource{call, i})
					}
				}
			}
			return
		}
		// Comma-ok forms: `x, _ := v.(*T)` / `m[k]` / `<-ch` — x is the
		// zero value (nil for pointer-likes) when the discarded ok is
		// false. When ok is bound to a real variable the convention is
		// that the caller tests it before using x (`if g, ok := m[k]; ok
		// { return g }`), so only the discarded-ok form seeds nilability.
		if len(as.Lhs) == 2 {
			okID, okIsBlank := as.Lhs[1].(*ast.Ident)
			if !okIsBlank || okID.Name != "_" {
				return
			}
			commaOK := false
			switch rhs := ast.Unparen(as.Rhs[0]).(type) {
			case *ast.TypeAssertExpr, *ast.IndexExpr:
				commaOK = true
			case *ast.UnaryExpr:
				commaOK = rhs.Op == token.ARROW
			}
			if commaOK {
				if obj := objAt(as.Lhs[0]); obj != nil && pointerLike(obj.Type()) {
					n.localNil[obj] = true
				}
			}
		}
		return
	}
	for i, l := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		obj := objAt(l)
		if obj == nil {
			continue
		}
		switch rhs := ast.Unparen(as.Rhs[i]).(type) {
		case *ast.Ident:
			if isNilIdent(info, rhs) {
				n.localNil[obj] = true
			}
		case *ast.CallExpr:
			n.localCalls[obj] = append(n.localCalls[obj], localSource{rhs, 0})
		}
	}
}

// recordSpecSources is recordAssignSources for `var` declarations; a
// pointer-typed declaration without an initializer starts out nil.
func (n *FuncNode) recordSpecSources(info *types.Info, vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		obj := info.Defs[name]
		if obj == nil || name.Name == "_" {
			continue
		}
		if len(vs.Values) == 0 {
			if pointerLike(obj.Type()) {
				n.localNil[obj] = true
			}
			continue
		}
		if len(vs.Values) == 1 && len(vs.Names) > 1 {
			if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok && !errorPairedCall(info, call) {
				n.localCalls[obj] = append(n.localCalls[obj], localSource{call, i})
			}
			continue
		}
		if i >= len(vs.Values) {
			continue
		}
		switch rhs := ast.Unparen(vs.Values[i]).(type) {
		case *ast.Ident:
			if isNilIdent(info, rhs) {
				n.localNil[obj] = true
			}
		case *ast.CallExpr:
			n.localCalls[obj] = append(n.localCalls[obj], localSource{rhs, 0})
		}
	}
}

// errorPairedCall reports whether the call's result tuple ends in an
// `error` or a `bool`. Such results follow the check-first convention
// (err != nil / comma-ok): a nil value result travels with a non-nil
// error or a false ok, which the caller tests before dereferencing, so
// the value results are not treated as nilable sources (see
// calleeNilable).
func errorPairedCall(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	var last types.Type
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() < 2 {
			return false
		}
		last = t.At(t.Len() - 1).Type()
	default:
		return false
	}
	if named, ok := last.(*types.Named); ok {
		return named.Obj().Name() == "error" && named.Obj().Pkg() == nil
	}
	if basic, ok := last.(*types.Basic); ok {
		return basic.Kind() == types.Bool
	}
	return false
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	if info.Uses[id] == nil {
		return true
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

func isNilCompare(be *ast.BinaryExpr) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (be.Op.String() == "==" || be.Op.String() == "!=") && (isNil(be.X) || isNil(be.Y))
}

// isEventLit reports whether the composite literal constructs a struct
// type named Event (the evpath overlay message) — the send-sink shape the
// epochset rule watches for.
func isEventLit(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return false
	}
	return named.Obj().Name() == "Event"
}

func isFieldSelect(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

func isPointerParam(sig *types.Signature, i int) bool {
	if sig == nil || i >= sig.Params().Len() {
		return false
	}
	_, ok := sig.Params().At(i).Type().Underlying().(*types.Pointer)
	return ok
}

// fixpoint iterates summary propagation over the whole graph until
// stable. Every bit is monotone, so a plain round-robin sweep in node
// order converges deterministically.
func (prog *Program) fixpoint() {
	for changed := true; changed; {
		changed = false
		for _, n := range prog.nodes {
			if prog.recompute(n) {
				changed = true
			}
		}
	}
}

func (prog *Program) recompute(n *FuncNode) bool {
	changed := false

	set := func(dst *bool, v bool) {
		if v && !*dst {
			*dst = true
			changed = true
		}
	}

	// Seeds.
	set(&n.Blocks, n.seedBlocks)
	set(&n.OrderEffect, n.orderPrim != "")
	if !n.summariesInit {
		n.summariesInit = true
		n.StampsEpoch = make([]bool, len(n.seedStamps))
		n.SinksEventData = make([]bool, len(n.seedSinks))
		n.DerefsParam = make([]bool, len(n.seedDerefs))
		n.NilableResult = make([]bool, len(n.seedNilable))
		n.ParamEscape = make([]Escape, len(n.seedStamps))
		n.ResultEscape = make([]Escape, len(n.seedNilable))
	}
	for i, v := range n.seedStamps {
		set(&n.StampsEpoch[i], v)
	}
	for i, v := range n.seedSinks {
		set(&n.SinksEventData[i], v)
	}
	for i, v := range n.seedDerefs {
		set(&n.DerefsParam[i], v && !n.guardedParams[i])
	}
	for i, v := range n.seedNilable {
		set(&n.NilableResult[i], v)
	}

	// Call-edge propagation.
	for _, site := range n.Sites {
		for _, callee := range site.Callees {
			if callee.Blocks && !n.Blocks {
				n.Blocks = true
				n.blockVia = callee
				changed = true
			}
			if callee.OrderEffect && !n.OrderEffect {
				n.OrderEffect = true
				n.orderVia = callee
				changed = true
			}
			for j, obj := range site.argObjs {
				i, isParam := n.paramIndex[obj]
				if !isParam || obj == nil {
					continue
				}
				if j < len(callee.StampsEpoch) && callee.StampsEpoch[j] {
					set(&n.StampsEpoch[i], true)
				}
				if callee.SinksEventData != nil && j < len(callee.SinksEventData) && callee.SinksEventData[j] {
					set(&n.SinksEventData[i], true)
				}
				if callee.DerefsParam != nil && j < len(callee.DerefsParam) && callee.DerefsParam[j] && !n.guardedParams[i] {
					set(&n.DerefsParam[i], true)
				}
			}
		}
	}

	// Nilable-return propagation: `return f(…)` forwards f's nilability.
	for _, row := range n.returnPositions {
		if len(row) == 1 && row[0].call != nil && len(n.NilableResult) >= 1 {
			for _, callee := range prog.Callees(n.Pkg, row[0].call) {
				for i := 0; i < len(n.NilableResult) && i < len(callee.NilableResult); i++ {
					set(&n.NilableResult[i], callee.NilableResult[i])
				}
			}
		} else if len(row) == len(n.NilableResult) {
			for i, re := range row {
				if re.local != nil {
					if n.localNil[re.local] {
						set(&n.NilableResult[i], true)
					}
					for _, src := range n.localCalls[re.local] {
						for _, callee := range prog.Callees(n.Pkg, src.call) {
							if src.idx < len(callee.NilableResult) && callee.NilableResult[src.idx] {
								set(&n.NilableResult[i], true)
							}
						}
					}
				}
				if re.call == nil {
					continue
				}
				for _, callee := range prog.Callees(n.Pkg, re.call) {
					if len(callee.NilableResult) == 1 && callee.NilableResult[0] {
						set(&n.NilableResult[i], true)
					}
				}
			}
		}
	}

	if prog.recomputeEscapes(n) {
		changed = true
	}
	return changed
}

// Nonblocking reports whether the function declaration carries the
// iocheck:nonblocking marker, declaring "runs in a context that must not
// block virtual time" (GM dispatch, pump serve path).
func Nonblocking(fd *ast.FuncDecl) bool {
	return hasDocMarker(fd.Doc, nonblockingMarker)
}

// hasDocMarker scans the raw doc comments for an iocheck marker.
// CommentGroup.Text() cannot be used here: it strips `//name:directive`
// comments — exactly the shape the markers take.
func hasDocMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}
