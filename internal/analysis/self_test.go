package analysis

import (
	"strings"
	"testing"
)

// TestModuleSelfCheck runs the full analyzer suite over the actual module
// and asserts zero unsuppressed diagnostics. This is the enforcement
// backstop: even a CI that only runs tier-1 (`go test ./...`) gates every
// PR on the determinism and protocol invariants, and a rule regression in
// the analyzers themselves shows up here as false positives on known-clean
// code.
func TestModuleSelfCheck(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the loader is missing most of the module", len(pkgs))
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range Unsuppressed(diags) {
		t.Errorf("%s", d)
	}
	// The audited exceptions must stay visible as suppressed findings; if
	// the last one disappears, the allow comment is stale and should go.
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Error("expected at least one suppressed (audited) finding in the tree; stale allow machinery?")
	}
}

// TestSuiteIsComplete pins the suite roster: all thirteen rules — the
// four syntactic ones, the four interprocedural ones built on the CFG
// and call-graph layer, the delivery-contract rule, the two
// heat-propagated perf rules, and the two protocol-lifecycle rules —
// must be registered, in deterministic order.
func TestSuiteIsComplete(t *testing.T) {
	want := []string{"simtime", "maprange", "nilrecv", "ctlmsg",
		"vtblock", "epochset", "nilflow", "maprange-deep", "dropresult",
		"hotalloc", "hotbox", "roundflow", "roundterm"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer[%d] = %q, want %q", i, a.Name, want[i])
		}
	}
}

// TestRunIsDeterministic runs the whole suite over the module twice and
// asserts the rendered diagnostics — suppressed included — are
// byte-identical: positions, ordering, and messages may not depend on map
// iteration or load order.
func TestRunIsDeterministic(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		pkgs, err := LoadModule(root)
		if err != nil {
			t.Fatalf("loading module: %v", err)
		}
		var sb strings.Builder
		for _, d := range Run(pkgs, Analyzers()) {
			sb.WriteString(d.String())
			sb.WriteString(" suppressed=")
			if d.Suppressed {
				sb.WriteString("y " + d.SuppressReason)
			} else {
				sb.WriteString("n")
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	first, second := render(), render()
	if first != second {
		t.Error("two identical runs rendered different output; diagnostics are not deterministic")
	}
}
