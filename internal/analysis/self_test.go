package analysis

import "testing"

// TestModuleSelfCheck runs the full analyzer suite over the actual module
// and asserts zero unsuppressed diagnostics. This is the enforcement
// backstop: even a CI that only runs tier-1 (`go test ./...`) gates every
// PR on the determinism and protocol invariants, and a rule regression in
// the analyzers themselves shows up here as false positives on known-clean
// code.
func TestModuleSelfCheck(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the loader is missing most of the module", len(pkgs))
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range Unsuppressed(diags) {
		t.Errorf("%s", d)
	}
	// The audited exceptions must stay visible as suppressed findings; if
	// the last one disappears, the allow comment is stale and should go.
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Error("expected at least one suppressed (audited) finding in the tree; stale allow machinery?")
	}
}
