package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Round-lifecycle summaries: the interprocedural layer under the
// roundflow and roundterm analyzers. Every control round in the module
// obeys an (until now unwritten) contract — issue with a deadline and a
// retry budget, dedupe by Seq before applying, fence-check the Epoch
// before applying, and drive every issued round to a terminal state. The
// per-function summaries here record which obligations a function
// discharges (directly or through its callees), computed as a monotone
// fixpoint over the CHA call graph, so the analyzers can ask "does some
// call on this path register a deadline?" without re-walking bodies.
//
// Round-path message classification (shared with ctlmsg's registry):
//
//   - A *round message* is a named struct whose name ends in Req, Resp,
//     or Notice and that carries both `Seq int64` and `Epoch int64`.
//   - Shard-relay messages (those with a `Shard int` field — StealReq,
//     ShardBeat, GapRelay, …) are a separate family with their own
//     single-writer discipline (DESIGN.md §14) and are excluded.
//   - Only Req-suffixed messages *issue* rounds; Resp/Notice messages
//     ride the return path. roundflow's budget/termination obligations
//     therefore track Req values, while its dedupe/fence obligations
//     gate the handlers that dispatch on any round message kind.
//
// Approximations, documented like the rest of the graph layer: calls
// through function values contribute nothing; function literals passed
// to launchers/callbacks are separate contexts (walkOwnCode); a Req
// literal that escapes without being sent or passed onward is not
// chased.

// roundKind classifies a message type within the round-path family.
type roundKind int

const (
	roundNone roundKind = iota
	roundReqMsg
	roundRespMsg
	roundNoticeMsg
)

// RoundSummary is one function's lifecycle-obligation summary.
type RoundSummary struct {
	// Issue: the function composes a round-path Req literal.
	Issue roundBit
	// Deadline: the function bounds a round wait — it reads a
	// CallTimeout policy knob or performs a *Timeout receive.
	Deadline roundBit
	// Retries: the function consults a CallRetries retry budget.
	Retries roundBit
	// Dedupe: the function reads .Seq off a round message — the
	// served-cache / stale-response guard primitive.
	Dedupe roundBit
	// Fence: the function reads or stamps .Epoch on a round message —
	// the split-brain fence primitive.
	Fence roundBit
	// State: the function writes shared state (field/map/pointer writes
	// or deletes, excluding Seq/Epoch stamps on round messages, which
	// are protocol bookkeeping rather than application effects).
	State roundBit
	// Term: the function drives a round to a terminal state — it calls a
	// span/round .End() (completed, timed out, fenced paths all funnel
	// through one).
	Term roundBit
	// StampsReq[i]: the function assigns .Epoch on parameter i where the
	// static operand type is a round-path Req — how callRound-style
	// issuers are recognized through `stampReqEpoch(req, …)` helpers.
	StampsReq []bool

	seeded        bool
	seedStampsReq []bool
}

// roundBit is one summary bit plus its witness: the callee it was
// inherited from (nil for seeds) and the seed's own primitive, for
// rendering chains like "managerLoop → reqSeq → r.Seq".
type roundBit struct {
	Has  bool
	via  *FuncNode
	prim string
}

func (b *roundBit) seed(prim string) {
	if !b.Has {
		b.Has = true
		b.prim = prim
	}
}

// deadlineWaitMethods are the timeout-bounded receive primitives; calling
// one bounds the wait the same way reading a CallTimeout knob does.
// Matched by method name, same contract style as orderSinks.
var deadlineWaitMethods = map[string]bool{
	"RecvTimeout": true, "WaitTimeout": true,
	"GetTimeout": true, "FetchTimeout": true,
}

// roundSendMethods are the send primitives roundflow/roundterm treat as
// the moment a round leaves the issuer (subset of maprange's orderSinks).
var roundSendMethods = map[string]bool{
	"Submit": true, "Send": true, "Put": true, "TryPut": true,
}

// roundKindOfType classifies t (pointer-stripped) within the round
// family.
func roundKindOfType(t types.Type) roundKind {
	if t == nil {
		return roundNone
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return roundNone
	}
	name := named.Obj().Name()
	kind := roundNone
	switch {
	case hasSuffix(name, "Req"):
		kind = roundReqMsg
	case hasSuffix(name, "Resp"):
		kind = roundRespMsg
	case hasSuffix(name, "Notice"):
		kind = roundNoticeMsg
	default:
		return roundNone
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || !hasSeqField(st) || !hasEpochField(st) || hasShardField(st) {
		return roundNone
	}
	return kind
}

// roundKindOfExpr classifies the static type of e.
func roundKindOfExpr(info *types.Info, e ast.Expr) roundKind {
	tv, ok := info.Types[e]
	if !ok {
		return roundNone
	}
	return roundKindOfType(tv.Type)
}

// roundTypeName renders the pointer-stripped type name of e, for
// diagnostics ("" when unavailable).
func roundTypeName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// stateWritePrim classifies an assignment target as an application-state
// write and names it. Seq/Epoch stamps on round messages are protocol
// bookkeeping (reqSeq/stampReqEpoch-style helpers must stay exempt from
// the applies-state gate), and writes to plain locals are not state.
func stateWritePrim(info *types.Info, lhs ast.Expr) (string, bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if (lhs.Sel.Name == "Seq" || lhs.Sel.Name == "Epoch") &&
			roundKindOfExpr(info, lhs.X) != roundNone {
			return "", false
		}
		return types.ExprString(lhs) + " =", true
	case *ast.IndexExpr:
		return types.ExprString(lhs.X) + "[…] =", true
	case *ast.StarExpr:
		return "*" + types.ExprString(lhs.X) + " =", true
	}
	return "", false
}

// ensureRounds seeds and propagates the round summaries once per
// Program. Deterministic: seeds are discovered in prog.nodes order and
// propagation is a round-robin sweep of monotone bits, so the via
// witnesses are stable across runs.
func (prog *Program) ensureRounds() {
	if prog.roundsDone {
		return
	}
	prog.roundsDone = true
	for _, n := range prog.nodes {
		prog.seedRounds(n)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.nodes {
			if prog.recomputeRounds(n) {
				changed = true
			}
		}
	}
}

// seedRounds scans one function body for direct obligation primitives.
func (prog *Program) seedRounds(n *FuncNode) {
	if n.Round.seeded {
		return
	}
	n.Round.seeded = true
	info := n.Pkg.Info
	sig, _ := n.Obj.Type().(*types.Signature)
	nparams := 0
	if sig != nil {
		nparams = sig.Params().Len()
	}
	n.Round.seedStampsReq = make([]bool, nparams)
	n.Round.StampsReq = make([]bool, nparams)

	paramAt := func(e ast.Expr) int {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return -1
		}
		obj := info.Uses[id]
		if obj == nil {
			return -1
		}
		if i, ok := n.paramIndex[obj]; ok {
			return i
		}
		return -1
	}

	walkOwnCode(n.Pkg, n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.SelectorExpr:
			switch node.Sel.Name {
			case "CallTimeout":
				n.Round.Deadline.seed(types.ExprString(node))
			case "CallRetries":
				n.Round.Retries.seed(types.ExprString(node))
			case "Seq":
				if roundKindOfExpr(info, node.X) != roundNone {
					n.Round.Dedupe.seed(types.ExprString(node))
				}
			case "Epoch":
				if roundKindOfExpr(info, node.X) != roundNone {
					n.Round.Fence.seed(types.ExprString(node))
				}
			}
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
				isPkgFunc := false
				if id, ok := sel.X.(*ast.Ident); ok {
					if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
						isPkgFunc = true
					}
				}
				if !isPkgFunc {
					if deadlineWaitMethods[sel.Sel.Name] {
						n.Round.Deadline.seed(types.ExprString(sel.X) + "." + sel.Sel.Name)
					}
					if sel.Sel.Name == "End" {
						n.Round.Term.seed(types.ExprString(sel.X) + ".End")
					}
				}
			}
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(node.Args) > 0 {
					n.Round.State.seed("delete(" + types.ExprString(node.Args[0]) + ")")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if prim, ok := stateWritePrim(info, lhs); ok {
					n.Round.State.seed(prim)
				}
				// Request-stamp seed: `r.Epoch = …` where r binds (via
				// type-switch/assert aliasing, see collect) to param i
				// and the static type is a round-path Req.
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && sel.Sel.Name == "Epoch" {
					if roundKindOfExpr(info, sel.X) == roundReqMsg {
						if i := paramAt(sel.X); i >= 0 {
							n.Round.seedStampsReq[i] = true
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if prim, ok := stateWritePrim(info, node.X); ok {
				n.Round.State.seed(prim)
			}
		case *ast.CompositeLit:
			if roundKindOfExpr(info, node) == roundReqMsg {
				n.Round.Issue.seed(roundTypeName(info, node) + "{…}")
			}
		}
		return true
	})
}

// recomputeRounds propagates summaries caller←callee over the call
// sites; every bit is monotone.
func (prog *Program) recomputeRounds(n *FuncNode) bool {
	changed := false
	inherit := func(dst *roundBit, src *roundBit, via *FuncNode) {
		if src.Has && !dst.Has {
			dst.Has = true
			dst.via = via
			changed = true
		}
	}
	for _, site := range n.Sites {
		for _, callee := range site.Callees {
			inherit(&n.Round.Issue, &callee.Round.Issue, callee)
			inherit(&n.Round.Deadline, &callee.Round.Deadline, callee)
			inherit(&n.Round.Retries, &callee.Round.Retries, callee)
			inherit(&n.Round.Dedupe, &callee.Round.Dedupe, callee)
			inherit(&n.Round.Fence, &callee.Round.Fence, callee)
			inherit(&n.Round.State, &callee.Round.State, callee)
			inherit(&n.Round.Term, &callee.Round.Term, callee)
			for j, obj := range site.argObjs {
				i, isParam := n.paramIndex[obj]
				if !isParam || obj == nil {
					continue
				}
				if j < len(callee.Round.StampsReq) && callee.Round.StampsReq[j] && !n.Round.StampsReq[i] {
					n.Round.StampsReq[i] = true
					changed = true
				}
			}
		}
	}
	for i, v := range n.Round.seedStampsReq {
		if v && !n.Round.StampsReq[i] {
			n.Round.StampsReq[i] = true
			changed = true
		}
	}
	return changed
}

// RoundChain renders the witness path for one summary bit, e.g.
// "(*Container).managerLoop → reqSeq → r.Seq". get selects the bit from
// a node's summary.
func RoundChain(n *FuncNode, get func(*RoundSummary) *roundBit) string {
	var parts []string
	for cur := n; cur != nil && len(parts) < 8; {
		parts = append(parts, cur.String())
		b := get(&cur.Round)
		if b.via == nil {
			if b.prim != "" {
				parts = append(parts, b.prim)
			}
			break
		}
		cur = b.via
	}
	return strings.Join(parts, " → ")
}
