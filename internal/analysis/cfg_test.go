package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildTestCFG wraps a function body in a throwaway file and builds its
// CFG. The builder is purely syntactic, so no type information is needed.
func buildTestCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f(a, b bool, xs []int) int {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd)
}

// condEdges collects the conditional edges, keyed by the leaf condition's
// source form (an identifier for the fixtures here).
func condEdges(cfg *CFG) map[string][]bool {
	out := make(map[string][]bool)
	for _, b := range cfg.Blocks {
		for _, e := range b.Succs {
			if e.Cond == nil {
				continue
			}
			name := "?"
			if id, ok := e.Cond.(*ast.Ident); ok {
				name = id.Name
			}
			out[name] = append(out[name], e.Branch)
		}
	}
	return out
}

func hasBackEdge(cfg *CFG) bool {
	for _, b := range cfg.Blocks {
		for _, e := range b.Succs {
			if e.To.Index <= e.From.Index {
				return true
			}
		}
	}
	return false
}

func TestCFGBranch(t *testing.T) {
	cfg := buildTestCFG(t, `
	if a {
		return 1
	}
	return 2`)
	edges := condEdges(cfg)
	branches := edges["a"]
	if len(branches) != 2 || branches[0] == branches[1] {
		t.Fatalf("condition a should have one true and one false edge, got %v", branches)
	}
	if len(cfg.Exit.Preds) < 2 {
		t.Fatalf("both returns should reach exit, preds = %d", len(cfg.Exit.Preds))
	}
}

func TestCFGLoop(t *testing.T) {
	cfg := buildTestCFG(t, `
	n := 0
	for i := 0; i < 10; i++ {
		n++
	}
	return n`)
	if !hasBackEdge(cfg) {
		t.Fatal("loop should produce a back edge")
	}
	if len(cfg.Exit.Preds) == 0 {
		t.Fatal("loop exit should reach the function exit")
	}
}

func TestCFGShortCircuit(t *testing.T) {
	cfg := buildTestCFG(t, `
	if a && b {
		return 1
	}
	return 2`)
	edges := condEdges(cfg)
	if len(edges["a"]) != 2 || len(edges["b"]) != 2 {
		t.Fatalf("&& should decompose into leaf conditions for a and b, got %v", edges)
	}
}

func TestCFGShortCircuitOr(t *testing.T) {
	cfg := buildTestCFG(t, `
	if a || b {
		return 1
	}
	return 2`)
	edges := condEdges(cfg)
	if len(edges["a"]) != 2 || len(edges["b"]) != 2 {
		t.Fatalf("|| should decompose into leaf conditions for a and b, got %v", edges)
	}
}

func TestCFGBreak(t *testing.T) {
	cfg := buildTestCFG(t, `
	for {
		if a {
			break
		}
	}
	return 0`)
	if len(cfg.Exit.Preds) == 0 {
		t.Fatal("break should make the statement after the loop reachable")
	}
}

func TestCFGDefer(t *testing.T) {
	cfg := buildTestCFG(t, `
	defer println(1)
	if a {
		defer println(2)
	}
	return 0`)
	if len(cfg.Defers) != 2 {
		t.Fatalf("Defers = %d, want 2", len(cfg.Defers))
	}
}

// cfgReachable returns the block indices reachable from Entry.
func cfgReachable(cfg *CFG) map[int]bool {
	seen := map[int]bool{cfg.Entry.Index: true}
	work := []*Block{cfg.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		for _, e := range b.Succs {
			if !seen[e.To.Index] {
				seen[e.To.Index] = true
				work = append(work, e.To)
			}
		}
	}
	return seen
}

// TestCFGPumpLoop pins the `for { select { ... } }` event-pump shape the
// lifecycle analyses walk constantly: every comm clause must hang off the
// loop body, a falling-through clause must rejoin the back edge, and a
// returning clause must reach Exit — no node may end up in an orphaned
// block.
func TestCFGPumpLoop(t *testing.T) {
	cfg := buildTestCFG(t, `
	ch := make(chan int)
	done := make(chan struct{})
	n := 0
	for {
		select {
		case v := <-ch:
			n += v
		case <-done:
			return n
		}
	}`)
	if !hasBackEdge(cfg) {
		t.Fatal("pump loop should produce a back edge")
	}
	reach := cfgReachable(cfg)
	for _, b := range cfg.Blocks {
		if len(b.Nodes) > 0 && !reach[b.Index] {
			t.Errorf("block %d holds nodes but is unreachable from entry", b.Index)
		}
	}
	if !reach[cfg.Exit.Index] {
		t.Fatal("the returning comm clause should reach Exit")
	}
}

// TestCFGPumpLoopLabeledBreak pins the labeled-break variant: `break loop`
// inside a comm clause must target the for loop's exit (not the select's),
// making the statements after the loop reachable.
func TestCFGPumpLoopLabeledBreak(t *testing.T) {
	cfg := buildTestCFG(t, `
	ch := make(chan int)
	n := 0
loop:
	for {
		select {
		case v := <-ch:
			if v < 0 {
				break loop
			}
			n += v
		}
	}
	n++
	return n`)
	if !hasBackEdge(cfg) {
		t.Fatal("pump loop should produce a back edge")
	}
	reach := cfgReachable(cfg)
	for _, b := range cfg.Blocks {
		if len(b.Nodes) > 0 && !reach[b.Index] {
			t.Errorf("block %d holds nodes but is unreachable from entry", b.Index)
		}
	}
	if !reach[cfg.Exit.Index] {
		t.Fatal("break loop should make the post-loop statements reach Exit")
	}
}

// TestCFGDeferInLoop pins defer-inside-loop: the defer registers inline in
// the loop body (back edge intact, body reachable) AND surfaces in the
// Exit block, so exit-path analyses see the deferred call even though the
// registration point is off the return paths.
func TestCFGDeferInLoop(t *testing.T) {
	cfg := buildTestCFG(t, `
	n := 0
	for i := 0; i < 3; i++ {
		defer println(i)
		n++
	}
	return n`)
	if len(cfg.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1", len(cfg.Defers))
	}
	if !hasBackEdge(cfg) {
		t.Fatal("loop around the defer should keep its back edge")
	}
	reach := cfgReachable(cfg)
	for _, b := range cfg.Blocks {
		if len(b.Nodes) > 0 && !reach[b.Index] {
			t.Errorf("block %d holds nodes but is unreachable from entry", b.Index)
		}
	}
	found := false
	for _, n := range cfg.Exit.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("deferred statement should surface in Exit.Nodes for exit-path analyses")
	}
}

// TestCFGDefersAtExitLIFO pins the ordering contract: Exit.Nodes lists the
// defers in reverse registration order, matching runtime LIFO execution.
func TestCFGDefersAtExitLIFO(t *testing.T) {
	cfg := buildTestCFG(t, `
	defer println(1)
	defer println(2)
	return 0`)
	var order []int
	for _, n := range cfg.Exit.Nodes {
		if ds, ok := n.(*ast.DeferStmt); ok {
			lit := ds.Call.Args[0].(*ast.BasicLit)
			if lit.Value == "1" {
				order = append(order, 1)
			} else {
				order = append(order, 2)
			}
		}
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("Exit defers = %v, want [2 1] (LIFO)", order)
	}
}

func TestCFGRangeBodyIsolated(t *testing.T) {
	// WalkCFGNode must not descend into a RangeStmt's body (the body has
	// its own blocks) but must still visit the ranged expression.
	cfg := buildTestCFG(t, `
	n := 0
	for _, v := range xs {
		n += v
	}
	return n`)
	sawRangeX, sawBody := false, false
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				continue
			}
			WalkCFGNode(rs, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && id.Name == "xs" {
					sawRangeX = true
				}
				if as, ok := m.(*ast.AssignStmt); ok && as.Tok == token.ADD_ASSIGN {
					sawBody = true
				}
				return true
			})
		}
	}
	if !sawRangeX {
		t.Fatal("WalkCFGNode should visit the ranged expression")
	}
	if sawBody {
		t.Fatal("WalkCFGNode must not descend into the range body")
	}
}
