package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Heat analysis: which functions run once (or more) per simulated event?
// The DES kernel executes millions of events per run, so an allocation
// inside a hot function multiplies into the Fig5 793k-allocs/op bill. The
// hot set is seeded at the kernel event loop and the per-event data-plane
// primitives (hotRootTable, plus //iocheck:hot markers) and propagated
// over the call graph, with three prunings that keep it honest:
//
//   - Interface dispatch is a heat boundary. CHA would flood heat through
//     Action.Handle and sim.Tracer into every implementer; instead an
//     implementation that really runs per event opts in with
//     //iocheck:hot (e.g. the trace kernel's Event method).
//   - Cold callees stop propagation: //iocheck:cold markers (pool-miss
//     slow paths, pressure-degradation paths), formatting methods
//     (String/Error/GoString/Format), and dump/shutdown/close/invalidate
//     name shapes.
//   - Cold blocks stop propagation: call sites inside error-handling
//     (`err != nil`), failed-comma-ok (`!ok`), or panic-reaching CFG
//     blocks are once-per-failure, not once-per-event.
//
// Launcher/callback function literals are not followed (walkOwnCode skips
// them); the launched bodies are hot only if they call hot primitives,
// which they reach as roots in their own right.

const (
	hotMarker  = "iocheck:hot"
	coldMarker = "iocheck:cold"
)

// hotRootTable seeds the heat fixpoint: per package-path suffix, the
// functions that execute at least once per simulated event (the engine
// loop, the park/unpark wait machinery, and the per-step data-plane
// entry points the paper's pipelines hammer).
var hotRootTable = map[string][]string{
	"internal/sim": {
		"(*Engine).Step", "(*Engine).schedule",
		"(*Proc).park", "(*Proc).unpark", "(*Proc).wake", "(*Proc).Sleep",
		"(*Queue).Get", "(*Queue).GetTimeout", "(*Queue).TryGet",
		"(*Queue).Put", "(*Queue).TryPut",
		"(*Event).Wait", "(*Event).WaitTimeout", "(*Event).Fire",
		"(*Resource).Acquire", "(*Resource).TryAcquire", "(*Resource).Release",
	},
	"internal/datatap": {
		"(*Writer).Write", "(*Writer).WriteTraced", "(*Writer).writeALO",
		"(*Reader).Fetch", "(*Reader).FetchTimeout", "(*Reader).pull",
		"(*Channel).redeliverDue", "(*Channel).reemit", "(*Channel).RedeliverLost",
	},
	"internal/evpath": {
		"(*bridge).run", "(*bridge).forward",
		"(*Stone).handle", "(*Stone).fanOut",
	},
	"internal/bp": {
		"(*Writer).Append", "encodePG",
	},
	"internal/cluster": {
		"(*Machine).Send", "(*Machine).RDMAGet",
	},
}

// coldNameExact / coldNamePrefixes match functions that are off the
// per-event path by shape: formatting, teardown, diagnostics.
var coldNameExact = map[string]bool{
	"String": true, "Error": true, "GoString": true, "Format": true,
}

var coldNamePrefixes = []string{
	"Dump", "dump", "Shutdown", "shutdown", "Close", "close",
	"Invalidate", "invalidate",
}

// isHotRoot reports whether n seeds the heat fixpoint.
func (prog *Program) isHotRoot(n *FuncNode) bool {
	if hasDocMarker(n.Decl.Doc, hotMarker) {
		return true
	}
	name := n.String()
	for suffix, names := range hotRootTable {
		if !strings.HasSuffix(n.Pkg.PkgPath, suffix) {
			continue
		}
		for _, want := range names {
			if name == want {
				return true
			}
		}
	}
	return false
}

// isColdFunc reports whether n must not receive (or forward) heat.
func isColdFunc(n *FuncNode) bool {
	if hasDocMarker(n.Decl.Doc, coldMarker) {
		return true
	}
	name := n.Obj.Name()
	if coldNameExact[name] {
		return true
	}
	for _, p := range coldNamePrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// ensureHeat runs the heat propagation once per Program (both rules call
// it; the second call is a no-op). Deterministic: roots are discovered in
// prog.nodes order and the BFS queue preserves it, so hotVia witnesses
// are stable across runs.
func (prog *Program) ensureHeat() {
	if prog.heatDone {
		return
	}
	prog.heatDone = true
	var queue []*FuncNode
	for _, n := range prog.nodes {
		if prog.isHotRoot(n) && !isColdFunc(n) {
			n.Hot = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		cold := n.coldBlocks()
		for _, site := range n.Sites {
			if cold.contains(site.Call.Pos()) {
				continue
			}
			callee := staticCallee(n.Pkg, site)
			if callee == nil || callee.Hot || isColdFunc(callee) {
				continue
			}
			callee.Hot = true
			callee.hotVia = n
			queue = append(queue, callee)
		}
	}
}

// staticCallee returns the unique statically-resolved target of the call
// site, or nil for interface dispatch (a heat boundary — see the package
// comment above) and unresolved function values.
func staticCallee(pkg *Package, site *CallSite) *FuncNode {
	if len(site.Callees) != 1 {
		return nil
	}
	if sel, ok := ast.Unparen(site.Call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
			return nil
		}
	}
	return site.Callees[0]
}

// HotChain renders the witness path from a hot root to this function,
// e.g. "(*Writer).WriteTraced → (*Recorder).Begin".
func (n *FuncNode) HotChain() string {
	var parts []string
	for cur := n; cur != nil && len(parts) < 10; cur = cur.hotVia {
		parts = append(parts, cur.String())
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " → ")
}

// posSpan is a half-open-ish source interval; contains uses the closed
// [Pos, End] range so every token of a covered statement (including
// nested function-literal bodies) tests inside.
type posSpan struct {
	pos, end token.Pos
}

// coldSet is the union of a function's cold-block source spans.
type coldSet []posSpan

func (cs coldSet) contains(p token.Pos) bool {
	for _, s := range cs {
		if s.pos <= p && p <= s.end {
			return true
		}
	}
	return false
}

// coldBlocks computes (once, cached) the source spans of n's cold CFG
// blocks: blocks only reachable through a cold edge — the taken branch of
// an `err != nil` / `x == nil` test or the failed branch of a bare
// comma-ok bool — and blocks that execute a panic call. Those run
// once-per-failure, so neither heat nor hotalloc findings flow there.
func (n *FuncNode) coldBlocks() coldSet {
	if n.coldDone {
		return n.coldSpans
	}
	n.coldDone = true
	cfg := BuildCFG(n.Decl)
	warm := make(map[*Block]bool)
	queue := []*Block{cfg.Entry}
	warm[cfg.Entry] = true
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		if blockPanics(blk) {
			continue // a panicking block's successors are its own problem
		}
		for _, e := range blk.Succs {
			if coldEdge(n.Pkg, e) || warm[e.To] {
				continue
			}
			warm[e.To] = true
			queue = append(queue, e.To)
		}
	}
	for _, blk := range cfg.Blocks {
		if warm[blk] && !blockPanics(blk) {
			continue
		}
		for _, node := range blk.Nodes {
			n.coldSpans = append(n.coldSpans, posSpan{node.Pos(), node.End()})
		}
	}
	return n.coldSpans
}

// blockPanics reports whether the block executes a direct panic call.
func blockPanics(blk *Block) bool {
	for _, node := range blk.Nodes {
		if es, ok := node.(*ast.ExprStmt); ok && isPanicCall(es.X) {
			return true
		}
	}
	return false
}

// coldEdge classifies a CFG edge as entering failure handling. The
// recognized shapes are the repo's conventions: `err != nil` (error
// operand), `x == nil` guards, and the failed branch of a bare bool
// named ok/found (comma-ok tests). Anything else is warm — cold-pruning
// must under-approximate so findings are not silently dropped.
func coldEdge(pkg *Package, e *Edge) bool {
	if e.Cond == nil {
		return false
	}
	switch c := ast.Unparen(e.Cond).(type) {
	case *ast.BinaryExpr:
		if !isNilCompare(c) {
			return false
		}
		// Only error-typed nil tests are failure handling: `err != nil`'s
		// true branch (and `err == nil`'s false branch) is cold. A plain
		// `x == nil` guard is often the steady state (lazy init of a nil
		// map, nil-receiver guards) and stays warm.
		operand := c.X
		if isNilIdent(pkg.Info, operand) {
			operand = c.Y
		}
		if !isErrorExpr(pkg.Info, operand) {
			return false
		}
		if c.Op == token.NEQ {
			return e.Branch
		}
		return !e.Branch
	case *ast.Ident:
		if c.Name != "ok" && c.Name != "found" {
			return false
		}
		if tv, okT := pkg.Info.Types[c]; !okT || tv.Type == nil || !isBoolType(tv.Type) {
			return false
		}
		return !e.Branch
	}
	return false
}

func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}
