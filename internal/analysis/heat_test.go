package analysis

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"testing"
)

func loadHeatFixture(t *testing.T) (*Package, *Program) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", "heat"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return pkg, NewProgram([]*Package{pkg})
}

// markPos locates the mark("label") call inside fnName.
func markPos(t *testing.T, pkg *Package, fnName, label string) token.Pos {
	t.Helper()
	var pos token.Pos
	for _, f := range pkg.Files {
		for _, fd := range enclosingFuncs(f) {
			if fd.Name.Name != fnName {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "mark" || len(call.Args) != 1 {
					return true
				}
				if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Value == `"`+label+`"` {
					pos = call.Pos()
				}
				return true
			})
		}
	}
	if !pos.IsValid() {
		t.Fatalf("no mark(%q) in %s", label, fnName)
	}
	return pos
}

// TestColdPruningEdgeCases walks the CFG shapes the pruner must get
// right: error branches nested in select clause bodies, labeled
// break/continue from failure paths, and panic blocks — without losing
// the warm statements around them.
func TestColdPruningEdgeCases(t *testing.T) {
	pkg, prog := loadHeatFixture(t)
	cases := []struct {
		fn, label string
		cold      bool
	}{
		{"selectCold", "warm recv", false},
		{"selectCold", "cold err", true},
		{"selectCold", "warm after err check", false},
		{"selectCold", "warm done", false},

		{"labeledCold", "warm inner", false},
		{"labeledCold", "cold break", true},
		{"labeledCold", "warm outer tail", false},
		{"labeledCold", "warm end", false},

		{"labeledContinueCold", "cold miss", true},
		{"labeledContinueCold", "warm hit", false},

		{"panicCold", "cold about to panic", true},
		{"panicCold", "warm tail", false},
	}
	for _, c := range cases {
		n := findNode(t, prog, c.fn)
		cold := n.coldBlocks()
		if got := cold.contains(markPos(t, pkg, c.fn, c.label)); got != c.cold {
			t.Errorf("%s: mark(%q) cold = %v, want %v", c.fn, c.label, got, c.cold)
		}
	}
}

// TestHeatPropagation checks the fixpoint's seeds and stops: the marked
// root heats its static callees transitively; calls in cold blocks,
// //iocheck:cold functions (and everything only they call), and
// cold-by-name-shape functions stay cold.
func TestHeatPropagation(t *testing.T) {
	_, prog := loadHeatFixture(t)
	prog.ensureHeat()
	cases := []struct {
		fn  string
		hot bool
	}{
		{"root", true},            // //iocheck:hot marker
		{"helper", true},          // direct static call from a hot function
		{"leaf", true},            // transitive
		{"onError", false},        // only called from a cold block
		{"slowPath", false},       // //iocheck:cold marker beats the call edge
		{"slowLeaf", false},       // propagation stops at the cold marker
		{"shutdownAll", false},    // cold name prefix
		{"(stamp).String", false}, // cold name exact
	}
	for _, c := range cases {
		if got := findNode(t, prog, c.fn).Hot; got != c.hot {
			t.Errorf("%s: Hot = %v, want %v", c.fn, got, c.hot)
		}
	}
	if got, want := findNode(t, prog, "leaf").HotChain(), "root → helper → leaf"; got != want {
		t.Errorf("leaf witness chain = %q, want %q", got, want)
	}
}
