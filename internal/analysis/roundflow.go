package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RoundFlow statically enforces the round-lifecycle contract the chaos
// suite keeps re-discovering violations of at runtime (the PR 4
// split-brain class):
//
//   - Issue leg: every path that sends a round-path Req must have
//     registered a deadline (CallTimeout read or *Timeout receive) and a
//     retry budget (CallRetries read) before the send. Req values are
//     recognized by composite literal or by flowing through a
//     stampReqEpoch-style helper (the StampsReq summary), and a send is
//     a Submit/Send/Put call carrying the value or an Event wrapping it,
//     or a call whose callee sinks the argument into an Event.
//   - Serve leg: every handler that dispatches on a round message
//     (type-switch with a round-typed arm, or a type assertion to a
//     round type) and applies state must reach a Seq dedupe guard and an
//     epoch fence-check on ALL CFG paths before the dispatch. Guards
//     count when performed directly (.Seq/.Epoch reads on round
//     messages) or through callees carrying the Dedupe/Fence summaries
//     (reqSeq, reqEpoch, …); diagnostics include the applies-state
//     witness chain that gated the check in.
//   - Closure leg: a round Req composed inside a function literal passed
//     to a call (the `mk` closures of the gm.call pattern) is checked
//     against the callee's summaries: some callee at that site must
//     transitively register both budget halves.
//
// The analysis is a forward MUST dataflow over the function CFG: guard
// bits only survive a merge when every incoming path established them.
var RoundFlow = &Analyzer{
	Name: "roundflow",
	Doc: "round-path Reqs must be sent under a deadline/retry budget, and round dispatches " +
		"that apply state must be dominated by Seq-dedupe and epoch-fence guards on every path",
	Applies: internalPkg,
	Run:     runRoundFlow,
}

func runRoundFlow(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	pass.Prog.ensureRounds()
	for _, n := range pass.Prog.nodes {
		if n.Pkg != pass.Pkg {
			continue
		}
		checkRoundFlow(pass, n)
	}
}

// Guard bits, established by path prefix and intersected at merges.
const (
	bitDeadline uint8 = 1 << iota
	bitRetries
	bitDedupe
	bitFence
)

// dispatchSite is one round-message dispatch the serve leg must check:
// the CFG node it anchors to (a type-switch's Assign statement, or the
// assert expression itself), the dispatched type for the message, and
// the applies-state witness that gated the site in.
type dispatchSite struct {
	pos     token.Pos
	armType string
	witness string
}

func checkRoundFlow(pass *Pass, n *FuncNode) {
	checkClosureReqs(pass, n)
	sites := collectDispatchSites(pass, n)
	if len(sites) == 0 && !tracksRounds(pass, n) {
		return
	}

	prob := &roundFlowProblem{pass: pass, fn: n, sites: sites}
	cfg := BuildCFG(n.Decl)
	facts := Forward(cfg, prob)
	prob.reported = make(map[token.Pos]bool)
	for _, blk := range cfg.Blocks {
		f := facts[blk.Index]
		if f == nil {
			continue
		}
		for _, node := range blk.Nodes {
			f = prob.Transfer(node, f)
		}
	}
}

// collectDispatchSites finds the round dispatches in n's own body (CFG
// scope: function literals excluded) that the serve leg must guard.
func collectDispatchSites(pass *Pass, n *FuncNode) map[ast.Node]*dispatchSite {
	info := pass.Pkg.Info
	sites := make(map[ast.Node]*dispatchSite)
	inspectOwn(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.TypeSwitchStmt:
			armType := ""
			witness := ""
			for _, st := range node.Body.List {
				cc, ok := st.(*ast.CaseClause)
				if !ok {
					continue
				}
				isRound := false
				for _, te := range cc.List {
					if tv, ok := info.Types[te]; ok && roundKindOfType(tv.Type) != roundNone {
						isRound = true
						if armType == "" {
							armType = roundTypeName(info, te)
						}
					}
				}
				if !isRound {
					continue
				}
				if w, ok := armAppliesState(pass, cc.Body); ok && witness == "" {
					witness = w
				}
			}
			if armType != "" && witness != "" {
				sites[node.Assign] = &dispatchSite{pos: node.Pos(), armType: armType, witness: witness}
			}
		case *ast.TypeAssertExpr:
			if node.Type == nil {
				return true // type-switch form, handled above
			}
			tv, ok := info.Types[node.Type]
			if !ok || roundKindOfType(tv.Type) == roundNone {
				return true
			}
			if !n.Round.State.Has {
				return true
			}
			sites[node] = &dispatchSite{
				pos:     node.Pos(),
				armType: roundTypeName(info, node.Type),
				witness: RoundChain(n, func(r *RoundSummary) *roundBit { return &r.State }),
			}
		}
		return true
	})
	return sites
}

// armAppliesState reports whether a dispatch arm writes application
// state, directly or through a callee, and renders the witness.
func armAppliesState(pass *Pass, body []ast.Stmt) (string, bool) {
	info := pass.Pkg.Info
	witness := ""
	for _, st := range body {
		inspectOwn(st, func(node ast.Node) bool {
			if witness != "" {
				return false
			}
			switch node := node.(type) {
			case *ast.AssignStmt:
				for _, lhs := range node.Lhs {
					if prim, ok := stateWritePrim(info, lhs); ok {
						witness = prim
						return false
					}
				}
			case *ast.IncDecStmt:
				if prim, ok := stateWritePrim(info, node.X); ok {
					witness = prim
					return false
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "delete" {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(node.Args) > 0 {
						witness = "delete(" + types.ExprString(node.Args[0]) + ")"
						return false
					}
				}
				for _, callee := range pass.Prog.Callees(pass.Pkg, node) {
					if callee.Round.State.Has {
						witness = RoundChain(callee, func(r *RoundSummary) *roundBit { return &r.State })
						return false
					}
				}
			}
			return true
		})
		if witness != "" {
			break
		}
	}
	return witness, witness != ""
}

// inspectOwn walks node's AST without descending into function literals,
// matching the CFG's scope.
func inspectOwn(node ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(node, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if !visit(m) {
			return false
		}
		_, isLit := m.(*ast.FuncLit)
		return !isLit
	})
}

// tracksRounds is the cheap prescan deciding whether the CFG pass can
// ever track a Req value in n's own body: a round-Req composite literal,
// or a call site with a request-stamping callee.
func tracksRounds(pass *Pass, n *FuncNode) bool {
	info := pass.Pkg.Info
	found := false
	inspectOwn(n.Decl.Body, func(node ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := node.(*ast.CompositeLit); ok && roundKindOfExpr(info, lit) == roundReqMsg {
			found = true
		}
		return !found
	})
	if found {
		return true
	}
	for _, site := range n.Sites {
		for _, callee := range site.Callees {
			for _, s := range callee.Round.StampsReq {
				if s {
					return true
				}
			}
		}
	}
	return false
}

// checkClosureReqs is the closure leg: a round-Req literal inside a
// function literal handed to a call (the gm.call `mk` pattern) obliges
// some callee at that site to register both budget halves transitively.
func checkClosureReqs(pass *Pass, n *FuncNode) {
	info := pass.Pkg.Info
	inspectOwn(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if launcher, callback := deferredCallKind(pass.Pkg, call); launcher || callback {
			return true // separate execution contexts, not round issuance
		}
		for _, arg := range call.Args {
			lit, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				cl, ok := m.(*ast.CompositeLit)
				if !ok || roundKindOfExpr(info, cl) != roundReqMsg {
					return true
				}
				callees := pass.Prog.Callees(pass.Pkg, call)
				budgeted := false
				for _, callee := range callees {
					if callee.Round.Deadline.Has && callee.Round.Retries.Has {
						budgeted = true
					}
				}
				if !budgeted {
					target := types.ExprString(call.Fun)
					missing := "a deadline/retry budget"
					for _, callee := range callees {
						switch {
						case callee.Round.Deadline.Has && !callee.Round.Retries.Has:
							missing = "a retry budget (CallRetries)"
						case !callee.Round.Deadline.Has && callee.Round.Retries.Has:
							missing = "a deadline (CallTimeout or a *Timeout receive)"
						}
					}
					pass.Reportf(cl.Pos(),
						"round request %s is composed in a closure passed to %s, which never registers %s before sending",
						roundTypeName(info, cl), target, missing)
				}
				return true
			})
		}
		return true
	})
}

// rfFact is the forward must-fact: the guard bits established on every
// path to this point, plus the tracked Req values (reqs) and the Event
// carriers wrapping one (evs). Maps are immutable copy-on-write.
type rfFact struct {
	bits uint8
	reqs map[types.Object]bool
	evs  map[types.Object]bool
}

type roundFlowProblem struct {
	pass  *Pass
	fn    *FuncNode
	sites map[ast.Node]*dispatchSite
	// reported is nil during the solve; non-nil arms diagnostics.
	reported map[token.Pos]bool
}

func (p *roundFlowProblem) Entry() Fact                            { return rfFact{} }
func (p *roundFlowProblem) Refine(_ ast.Expr, _ bool, f Fact) Fact { return f }

func (p *roundFlowProblem) Join(a, b Fact) Fact {
	fa, fb := a.(rfFact), b.(rfFact)
	return rfFact{
		bits: fa.bits & fb.bits, // must: both paths established the guard
		reqs: unionObjs(fa.reqs, fb.reqs),
		evs:  unionObjs(fa.evs, fb.evs), // may: either path tracked the value
	}
}

func (p *roundFlowProblem) Equal(a, b Fact) bool {
	fa, fb := a.(rfFact), b.(rfFact)
	return fa.bits == fb.bits && equalObjs(fa.reqs, fb.reqs) && equalObjs(fa.evs, fb.evs)
}

func unionObjs(a, b map[types.Object]bool) map[types.Object]bool {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(map[types.Object]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func equalObjs(a, b map[types.Object]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func addObj(m map[types.Object]bool, obj types.Object) map[types.Object]bool {
	if m[obj] {
		return m
	}
	out := make(map[types.Object]bool, len(m)+1)
	for k := range m {
		out[k] = true
	}
	out[obj] = true
	return out
}

func dropObj(m map[types.Object]bool, obj types.Object) map[types.Object]bool {
	if !m[obj] {
		return m
	}
	out := make(map[types.Object]bool, len(m))
	for k := range m {
		if k != obj {
			out[k] = true
		}
	}
	return out
}

func (p *roundFlowProblem) Transfer(n ast.Node, f Fact) Fact {
	fact := f.(rfFact)
	if site, ok := p.sites[n]; ok {
		p.checkDispatch(site, fact)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		return p.transferAssign(n, fact)
	case *ast.ExprStmt:
		return p.transferExpr(n.X, fact)
	default:
		if e, ok := n.(ast.Expr); ok {
			return p.transferExpr(e, fact)
		}
		if stmt, ok := n.(ast.Stmt); ok {
			return p.transferStmtShallow(stmt, fact)
		}
	}
	return fact
}

// transferStmtShallow applies the expression effects of statements that
// carry expressions but no bindings of interest (sends, returns, defers,
// if/for inits already appear as their own nodes).
func (p *roundFlowProblem) transferStmtShallow(stmt ast.Stmt, fact rfFact) rfFact {
	out := fact
	WalkCFGNode(stmt, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			out = p.transferAssign(m, out)
			return false
		case *ast.CallExpr:
			out = p.transferCall(m, out)
			return false
		case *ast.SelectorExpr:
			out = p.noteGuardRead(m, out)
		case *ast.TypeAssertExpr:
			if site, ok := p.sites[ast.Node(m)]; ok {
				// The asserted expression evaluates before the dispatch:
				// a gm.call(...).(*XResp) assert is guarded by the
				// callee's own dedupe/fence summaries.
				out = p.transferExpr(m.X, out)
				p.checkDispatch(site, out)
				return false
			}
		}
		return true
	})
	return out
}

func (p *roundFlowProblem) transferAssign(as *ast.AssignStmt, fact rfFact) rfFact {
	out := fact
	for _, rhs := range as.Rhs {
		out = p.transferExpr(rhs, out)
	}
	info := p.pass.Pkg.Info
	for i, lhs := range as.Lhs {
		obj := defOrUseObj(info, lhs)
		if obj == nil {
			continue
		}
		var rhs ast.Expr
		if i < len(as.Rhs) {
			rhs = as.Rhs[i]
		}
		if rhs != nil {
			if lit := compositeOf(rhs); lit != nil {
				if roundKindOfExpr(info, lit) == roundReqMsg {
					out.reqs = addObj(out.reqs, obj)
					continue
				}
				if isEventLit(info, lit) && p.litWrapsTracked(lit, out) {
					out.evs = addObj(out.evs, obj)
					continue
				}
			}
		}
		// Reassignment to anything else unbinds the name.
		out.reqs = dropObj(out.reqs, obj)
		out.evs = dropObj(out.evs, obj)
	}
	return out
}

// litWrapsTracked reports whether an Event literal's Data field carries a
// tracked Req value (or composes one inline).
func (p *roundFlowProblem) litWrapsTracked(lit *ast.CompositeLit, fact rfFact) bool {
	info := p.pass.Pkg.Info
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Data" {
			continue
		}
		if obj := useObj(info, kv.Value); obj != nil && fact.reqs[obj] {
			return true
		}
		if inner := compositeOf(kv.Value); inner != nil && roundKindOfExpr(info, inner) == roundReqMsg {
			return true
		}
	}
	return false
}

func (p *roundFlowProblem) transferExpr(e ast.Expr, fact rfFact) rfFact {
	out := fact
	WalkCFGNode(e, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			out = p.transferCall(m, out)
			return false
		case *ast.SelectorExpr:
			out = p.noteGuardRead(m, out)
		case *ast.TypeAssertExpr:
			if site, ok := p.sites[ast.Node(m)]; ok {
				out = p.transferExpr(m.X, out)
				p.checkDispatch(site, out)
				return false
			}
		}
		return true
	})
	return out
}

// noteGuardRead sets guard bits for direct primitive reads.
func (p *roundFlowProblem) noteGuardRead(sel *ast.SelectorExpr, fact rfFact) rfFact {
	info := p.pass.Pkg.Info
	out := fact
	switch sel.Sel.Name {
	case "CallTimeout":
		out.bits |= bitDeadline
	case "CallRetries":
		out.bits |= bitRetries
	case "Seq":
		if roundKindOfExpr(info, sel.X) != roundNone {
			out.bits |= bitDedupe
		}
	case "Epoch":
		if roundKindOfExpr(info, sel.X) != roundNone {
			out.bits |= bitFence
		}
	}
	return out
}

func (p *roundFlowProblem) transferCall(call *ast.CallExpr, fact rfFact) rfFact {
	out := fact
	info := p.pass.Pkg.Info
	// Argument sub-expressions first (evaluation order), idents handled
	// against callee summaries below.
	for _, a := range call.Args {
		switch a.(type) {
		case *ast.Ident:
		default:
			out = p.transferExpr(a, out)
		}
	}
	out = p.transferExpr(call.Fun, out)

	callees := p.pass.Prog.Callees(p.pass.Pkg, call)
	for _, callee := range callees {
		if callee.Round.Deadline.Has {
			out.bits |= bitDeadline
		}
		if callee.Round.Retries.Has {
			out.bits |= bitRetries
		}
		if callee.Round.Dedupe.Has {
			out.bits |= bitDedupe
		}
		if callee.Round.Fence.Has {
			out.bits |= bitFence
		}
	}
	// A *Timeout receive or .End() in the call position also counts as a
	// direct deadline primitive (noteGuardRead saw the selector already
	// via transferExpr on call.Fun for deadlineWaitMethods' CallTimeout
	// form; the method-name form is handled here).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && deadlineWaitMethods[sel.Sel.Name] {
		if !isPkgSelector(info, sel) {
			out.bits |= bitDeadline
		}
	}

	for j, a := range call.Args {
		obj := useObj(info, a)
		if obj != nil {
			stamps, sinks := false, false
			for _, callee := range callees {
				if j < len(callee.Round.StampsReq) && callee.Round.StampsReq[j] {
					stamps = true
				}
				if j < len(callee.SinksEventData) && callee.SinksEventData[j] {
					sinks = true
				}
			}
			if stamps {
				out.reqs = addObj(out.reqs, obj)
			}
			if sinks && (out.reqs[obj] || out.evs[obj]) {
				p.checkSend(a.Pos(), obj, out)
			}
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && roundSendMethods[sel.Sel.Name] && !isPkgSelector(info, sel) {
		for _, a := range call.Args {
			if obj := useObj(info, a); obj != nil && (out.reqs[obj] || out.evs[obj]) {
				p.checkSend(a.Pos(), obj, out)
				continue
			}
			if lit := compositeOf(a); lit != nil && isEventLit(info, lit) && p.litWrapsTracked(lit, out) {
				p.checkSend(a.Pos(), nil, out)
			}
		}
	}
	return out
}

func isPkgSelector(info *types.Info, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := info.Uses[id].(*types.PkgName)
	return isPkg
}

func useObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

func defOrUseObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// checkSend enforces the issue-leg obligations at a send of a tracked
// Req (or an Event wrapping one).
func (p *roundFlowProblem) checkSend(pos token.Pos, obj types.Object, fact rfFact) {
	if p.reported == nil {
		return
	}
	name := "round request"
	if obj != nil {
		name = "round request " + obj.Name()
	}
	if fact.bits&bitDeadline == 0 {
		p.reportOnce(pos, "%s is sent with no deadline registered on this path; read the CallTimeout budget or use a *Timeout receive before the send", name)
	}
	if fact.bits&bitRetries == 0 {
		p.reportOnce(pos+1, "%s is sent with no retry budget consulted on this path; read CallRetries before the send", name)
	}
}

// checkDispatch enforces the serve-leg obligations at a round dispatch.
func (p *roundFlowProblem) checkDispatch(site *dispatchSite, fact rfFact) {
	if p.reported == nil {
		return
	}
	if fact.bits&bitDedupe == 0 {
		p.reportOnce(site.pos, "%s dispatch applies state (%s) without a Seq dedupe guard on every path before it; read .Seq against the served/pending record before applying", site.armType, site.witness)
	}
	if fact.bits&bitFence == 0 {
		p.reportOnce(site.pos+1, "%s dispatch applies state (%s) without an epoch fence-check on every path before it; compare .Epoch against the fenced epoch before applying (split-brain guard)", site.armType, site.witness)
	}
}

// reportOnce dedupes by position: the report pass re-runs Transfer over
// every block, so a node can be visited more than once. The +1 offsets
// in the callers keep the two obligations of one site distinct while
// still rendering on the same source line.
func (p *roundFlowProblem) reportOnce(pos token.Pos, format string, args ...any) {
	if p.reported[pos] {
		return
	}
	p.reported[pos] = true
	p.pass.Reportf(pos, format, args...)
}
