// Package analysis is an in-repo static-analysis framework built only on
// the standard library's go/ast, go/parser, go/token, and go/types — no
// golang.org/x/tools dependency, so the module stays zero-dep and the
// checks run network-free. It exists to machine-check the invariants the
// compiler cannot see and the simulator's correctness rests on:
// bit-deterministic replay from a seed, nil-safe fault schedules, and the
// crash-tolerance protocol's exhaustive dispatch.
//
// The analyzers (simtime, maprange, nilrecv, ctlmsg, the CFG-based
// vtblock/epochset/nilflow/maprange-deep, dropresult, and the
// heat-propagated perf rules hotalloc/hotbox — one file per rule) are run
// by cmd/iocheck over the whole module (`make lint`) and by the repo-wide
// self-check test, so `go test ./...` enforces them too.
//
// Audited exceptions are suppressed — but stay visible — with a comment on
// the flagged line or on the line directly above it:
//
//	//iocheck:allow <rule> <reason>
//
// The reason is mandatory; an allow comment without one is itself a
// diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, resolved to a file position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
	// Suppressed is set when an //iocheck:allow comment covers the
	// diagnostic; suppressed findings are reported only in verbose mode
	// and never fail the run.
	Suppressed bool
	// SuppressReason is the audit trail from the allow comment.
	SuppressReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one named rule.
type Analyzer struct {
	Name string
	Doc  string
	// Applies filters packages (nil = run everywhere). The golden tests
	// bypass it and call Run directly.
	Applies func(pkg *Package) bool
	Run     func(pass *Pass)
}

// Pass carries one analyzer's execution over one package. Prog is the
// whole-program call graph shared by every pass of a Run (nil only when a
// Pass is constructed by hand without one).
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Prog     *Program
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in a stable order: the four
// syntactic rules from the original suite, the four interprocedural
// rules built on the CFG/call-graph layer, the delivery-contract rule
// from the at-least-once data plane, the two heat-propagated perf
// rules, then the two protocol-lifecycle rules built on the round
// summaries.
func Analyzers() []*Analyzer {
	return []*Analyzer{SimTime, MapRange, NilRecv, CtlMsg, VTBlock, EpochSet, NilFlow, MapRangeDeep, DropResult, HotAlloc, HotBox, RoundFlow, RoundTerm}
}

// Run executes the given analyzers over the packages and returns all
// diagnostics — suppressed ones included — in a total order (file, line,
// column, rule, message), so two runs over the same tree are
// byte-identical even when one position carries several findings.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	prog := NewProgram(pkgs)
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg)
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog}
			a.Run(pass)
			out = append(out, applyAllows(pass.diags, allows)...)
		}
		out = append(out, allows.malformed...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out
}

// Unsuppressed filters diags down to the findings that fail a run.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// allowKey identifies one allow site: a rule allowed at a file line.
type allowKey struct {
	file string
	line int
	rule string
}

type allowSet struct {
	entries map[allowKey]string // -> reason
	// malformed collects allow comments with no reason; they are
	// diagnostics in their own right so audits cannot silently erode.
	malformed []Diagnostic
}

const allowMarker = "iocheck:allow"

// collectAllows scans every comment in the package for allow markers. An
// allow comment covers diagnostics on its own line and on the line
// immediately below it (the usual "comment above the flagged statement"
// placement, including the last line of a doc comment).
func collectAllows(pkg *Package) *allowSet {
	as := &allowSet{entries: make(map[allowKey]string)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowMarker) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowMarker))
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					as.malformed = append(as.malformed, Diagnostic{
						Pos:  pos,
						Rule: "allow",
						Message: "malformed //iocheck:allow comment: " +
							"need a rule name and a reason",
					})
					continue
				}
				rule := fields[0]
				reason := strings.TrimSpace(strings.TrimPrefix(rest, rule))
				for _, line := range []int{pos.Line, pos.Line + 1} {
					as.entries[allowKey{pos.Filename, line, rule}] = reason
				}
			}
		}
	}
	return as
}

func applyAllows(diags []Diagnostic, as *allowSet) []Diagnostic {
	for i := range diags {
		d := &diags[i]
		if reason, ok := as.entries[allowKey{d.Pos.Filename, d.Pos.Line, d.Rule}]; ok {
			d.Suppressed = true
			d.SuppressReason = reason
		}
	}
	return diags
}

// enclosingFuncs returns every function declaration in the file, used by
// analyzers that reason about whole function bodies.
func enclosingFuncs(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}

// internalPkg reports whether the package is module-internal simulation
// code (the scope of the determinism rules).
func internalPkg(pkg *Package) bool {
	return strings.Contains(pkg.PkgPath, "/internal/")
}
