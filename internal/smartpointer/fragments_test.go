package smartpointer

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/atoms"
)

// twoBlockSnapshot builds two well-separated atom clusters in one box.
func twoBlockSnapshot(a float64) *atoms.Snapshot {
	s := &atoms.Snapshot{Box: atoms.Box{L: atoms.Vec3{40 * a, 10 * a, 10 * a}}}
	id := int64(0)
	addBlock := func(x0 float64, nx int) {
		for x := 0; x < nx; x++ {
			for y := 0; y < 3; y++ {
				for z := 0; z < 3; z++ {
					s.ID = append(s.ID, id)
					s.Pos = append(s.Pos, atoms.Vec3{
						x0 + float64(x)*a, float64(y) * a, float64(z) * a})
					s.Vel = append(s.Vel, atoms.Vec3{})
					id++
				}
			}
		}
	}
	addBlock(0, 4)    // 36 atoms
	addBlock(20*a, 3) // 27 atoms, far away
	return s
}

func TestFragmentsSeparatesComponents(t *testing.T) {
	a := 1.0
	s := twoBlockSnapshot(a)
	adj := Bonds(s, 1.1*a)
	frags := Fragments(s, adj)
	if len(frags) != 2 {
		t.Fatalf("fragments %d, want 2", len(frags))
	}
	// Largest first.
	if frags[0].Size() != 36 || frags[1].Size() != 27 {
		t.Fatalf("sizes %d %d", frags[0].Size(), frags[1].Size())
	}
	if frags[0].Label != 0 || frags[1].Label != 1 {
		t.Fatal("labels not ordered")
	}
	// No atom in two fragments; all atoms covered.
	seen := map[int64]bool{}
	for _, f := range frags {
		for _, id := range f.IDs {
			if seen[id] {
				t.Fatalf("atom %d in two fragments", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != s.N() {
		t.Fatalf("covered %d of %d atoms", len(seen), s.N())
	}
}

func TestFragmentCentroid(t *testing.T) {
	a := 1.0
	s := twoBlockSnapshot(a)
	adj := Bonds(s, 1.1*a)
	frags := Fragments(s, adj)
	// Block 1 spans x in [0,3a]: centroid x = 1.5a.
	if math.Abs(frags[0].Centroid[0]-1.5) > 1e-9 {
		t.Fatalf("centroid %v", frags[0].Centroid)
	}
	// Block 2 spans x in [20a,22a]: centroid x = 21a.
	if math.Abs(frags[1].Centroid[0]-21) > 1e-9 {
		t.Fatalf("centroid %v", frags[1].Centroid)
	}
}

func TestFragmentCentroidAcrossBoundary(t *testing.T) {
	// A two-atom "fragment" straddling the periodic boundary: atoms at
	// x=9.8 and x=0.2 in a box of 10. The centroid must be ~0.0 (the
	// wrap point), not 5.0.
	s := &atoms.Snapshot{Box: atoms.Box{L: atoms.Vec3{10, 10, 10}},
		ID:  []int64{0, 1},
		Pos: []atoms.Vec3{{9.8, 1, 1}, {0.2, 1, 1}},
		Vel: make([]atoms.Vec3, 2)}
	adj := Bonds(s, 0.5)
	frags := Fragments(s, adj)
	if len(frags) != 1 {
		t.Fatalf("fragments %d", len(frags))
	}
	x := frags[0].Centroid[0]
	if !(x > 9.9 || x < 0.1) {
		t.Fatalf("boundary centroid x=%g, want near the wrap point", x)
	}
}

func TestCrackSplitsCrystalIntoFragments(t *testing.T) {
	// Pull a crystal apart along x and watch one fragment become two —
	// the CTH-style fragment-generation event.
	a := 1.5496
	s := atoms.FCCLattice(6, 3, 3, a)
	adj := Bonds(s, 0.85*a)
	before := Fragments(s, adj)
	if len(before) != 1 {
		t.Fatalf("intact crystal has %d fragments", len(before))
	}
	// Separate the halves by shifting the right half outward.
	cut := s.Box.L[0] / 2
	s.Box.L[0] *= 2 // room to move without periodic rejoining
	for i := range s.Pos {
		if s.Pos[i][0] >= cut {
			s.Pos[i][0] += 5 * a
		}
	}
	after := Fragments(s, Bonds(s, 0.85*a))
	if len(after) != 2 {
		t.Fatalf("split crystal has %d fragments", len(after))
	}
	matches := TrackFragments(before, after)
	// Both new fragments descend from fragment 0 (a split), no deaths.
	splitChildren := 0
	for _, m := range matches {
		if m.Cur >= 0 {
			if m.Prev != 0 {
				t.Fatalf("child %d has ancestor %d", m.Cur, m.Prev)
			}
			if m.Shared == 0 {
				t.Fatal("split child shares no atoms with parent")
			}
			splitChildren++
		}
	}
	if splitChildren != 2 {
		t.Fatalf("split children %d", splitChildren)
	}
}

func TestTrackFragmentsBirthsAndDeaths(t *testing.T) {
	mk := func(label int, ids ...int64) *Fragment {
		return &Fragment{Label: label, IDs: ids}
	}
	prev := []*Fragment{mk(0, 1, 2, 3), mk(1, 10, 11)}
	cur := []*Fragment{mk(0, 1, 2, 3), mk(1, 50, 51)} // 10,11 gone; 50,51 born
	matches := TrackFragments(prev, cur)
	var birth, death, stable bool
	for _, m := range matches {
		switch {
		case m.Prev == -1 && m.Cur == 1:
			birth = true
		case m.Prev == 1 && m.Cur == -1:
			death = true
		case m.Prev == 0 && m.Cur == 0 && m.Shared == 3:
			stable = true
		}
	}
	if !birth || !death || !stable {
		t.Fatalf("matches %+v", matches)
	}
}

// Property: fragments partition the atom set for arbitrary random
// configurations — every atom in exactly one fragment, sizes sum to N.
func TestFragmentsPartitionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		r := newDeterministic(seed)
		s := &atoms.Snapshot{Box: atoms.Box{L: atoms.Vec3{8, 8, 8}},
			ID: make([]int64, n), Pos: make([]atoms.Vec3, n), Vel: make([]atoms.Vec3, n)}
		for i := 0; i < n; i++ {
			s.ID[i] = int64(i * 3) // non-dense IDs
			s.Pos[i] = atoms.Vec3{r() * 8, r() * 8, r() * 8}
		}
		frags := Fragments(s, Bonds(s, 1.2))
		total := 0
		seen := map[int64]bool{}
		for _, fr := range frags {
			total += fr.Size()
			for _, id := range fr.IDs {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// newDeterministic returns a cheap deterministic [0,1) generator.
func newDeterministic(seed int64) func() float64 {
	state := uint64(seed)*2862933555777941757 + 3037000493
	return func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
}
