package smartpointer

import (
	"math"
	"sort"

	"repro/internal/atoms"
)

// CSymResult holds per-atom central-symmetry parameters.
type CSymResult struct {
	// P[i] is atom i's central-symmetry parameter: ~0 in a perfect
	// centrosymmetric crystal, large at defects and free surfaces.
	P []float64
	// Threshold is the defect classification bound used.
	Threshold float64
}

// DefectCount returns the number of atoms with P above the threshold.
func (r *CSymResult) DefectCount() int {
	n := 0
	for _, p := range r.P {
		if p > r.Threshold {
			n++
		}
	}
	return n
}

// DefectFraction returns the defective fraction of atoms.
func (r *CSymResult) DefectFraction() float64 {
	if len(r.P) == 0 {
		return 0
	}
	return float64(r.DefectCount()) / float64(len(r.P))
}

// Max returns the largest parameter.
func (r *CSymResult) Max() float64 {
	m := 0.0
	for _, p := range r.P {
		if p > m {
			m = p
		}
	}
	return m
}

// csymNeighbors is the neighbor count the parameter pairs over (12 for
// FCC/HCP).
const csymNeighbors = 12

// CSym computes the central-symmetry parameter of every atom (Kelchner et
// al.): take the 12 nearest neighbors, greedily match them into 6 most
// nearly opposite pairs, and sum |r_a + r_b|^2. cutoff bounds the neighbor
// search; threshold classifies defects (in units of the squared nearest-
// neighbor distance a defect-free parameter is ~0 against).
func CSym(s *atoms.Snapshot, cutoff, threshold float64) *CSymResult {
	cl := atoms.NewCellList(s, cutoff)
	res := &CSymResult{P: make([]float64, s.N()), Threshold: threshold}
	type nb struct {
		d2 float64
		v  atoms.Vec3
	}
	for i := 0; i < s.N(); i++ {
		var nbs []nb
		cl.ForNeighbors(i, func(j int, d2 float64) {
			nbs = append(nbs, nb{d2: d2, v: s.Box.Delta(s.Pos[i], s.Pos[j])})
		})
		sort.Slice(nbs, func(a, b int) bool { return nbs[a].d2 < nbs[b].d2 })
		k := csymNeighbors
		if len(nbs) < k {
			k = len(nbs)
		}
		nbs = nbs[:k]
		used := make([]bool, len(nbs))
		p := 0.0
		// Greedy opposite-pair matching: repeatedly take the unused pair
		// with the smallest |ra+rb|^2.
		for pairs := 0; pairs < len(nbs)/2; pairs++ {
			best, bi, bj := math.Inf(1), -1, -1
			for a := 0; a < len(nbs); a++ {
				if used[a] {
					continue
				}
				for b := a + 1; b < len(nbs); b++ {
					if used[b] {
						continue
					}
					sum := nbs[a].v.Add(nbs[b].v)
					if d := sum.Dot(sum); d < best {
						best, bi, bj = d, a, b
					}
				}
			}
			if bi < 0 {
				break
			}
			used[bi], used[bj] = true, true
			p += best
		}
		// Atoms with under-full neighborhoods (surfaces, crack faces)
		// are maximally non-centrosymmetric: charge the missing pairs.
		if k < csymNeighbors && k > 0 {
			missing := (csymNeighbors - k) / 2
			p += float64(missing) * 2 * nbs[0].d2
		}
		res.P[i] = p
	}
	return res
}

// BreakDetected applies the pipeline's dynamic-branch trigger: a break is
// declared when more than fraction of atoms are defective. The paper's
// scenario has CSym detect the broken bond and switch the pipeline from
// Bonds to CNA.
func (r *CSymResult) BreakDetected(fraction float64) bool {
	return r.DefectFraction() > fraction
}
