package smartpointer

import (
	"fmt"
	"sort"

	"repro/internal/atoms"
)

// Merge combines per-rank partial snapshots (as the LAMMPS Helper
// aggregation tree does with the bonds data arriving from the parallel
// simulation) into one snapshot ordered by atom ID. All parts must share
// the same box and timestep.
func Merge(parts []*atoms.Snapshot) (*atoms.Snapshot, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("smartpointer: merge of zero parts")
	}
	out := &atoms.Snapshot{Step: parts[0].Step, Box: parts[0].Box}
	for pi, p := range parts {
		if p.Box != parts[0].Box {
			return nil, fmt.Errorf("smartpointer: part %d box mismatch", pi)
		}
		if p.Step != parts[0].Step {
			return nil, fmt.Errorf("smartpointer: part %d step %d != %d", pi, p.Step, parts[0].Step)
		}
		out.ID = append(out.ID, p.ID...)
		out.Pos = append(out.Pos, p.Pos...)
		out.Vel = append(out.Vel, p.Vel...)
	}
	// Order by ID and reject duplicates.
	idx := make([]int, len(out.ID))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return out.ID[idx[a]] < out.ID[idx[b]] })
	id := make([]int64, len(idx))
	pos := make([]atoms.Vec3, len(idx))
	vel := make([]atoms.Vec3, len(idx))
	for k, i := range idx {
		id[k], pos[k], vel[k] = out.ID[i], out.Pos[i], out.Vel[i]
		if k > 0 && id[k] == id[k-1] {
			return nil, fmt.Errorf("smartpointer: duplicate atom id %d across parts", id[k])
		}
	}
	out.ID, out.Pos, out.Vel = id, pos, vel
	return out, nil
}

// Partition splits a snapshot into n contiguous slabs along the x axis,
// the inverse of Merge used to emulate per-rank LAMMPS output.
func Partition(s *atoms.Snapshot, n int) []*atoms.Snapshot {
	if n < 1 {
		n = 1
	}
	parts := make([]*atoms.Snapshot, n)
	for i := range parts {
		parts[i] = &atoms.Snapshot{Step: s.Step, Box: s.Box}
	}
	w := s.Box.L[0] / float64(n)
	for i := range s.Pos {
		k := int(s.Box.Wrap(s.Pos[i])[0] / w)
		if k >= n {
			k = n - 1
		}
		p := parts[k]
		p.ID = append(p.ID, s.ID[i])
		p.Pos = append(p.Pos, s.Pos[i])
		p.Vel = append(p.Vel, s.Vel[i])
	}
	return parts
}
