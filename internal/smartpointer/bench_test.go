package smartpointer

import (
	"testing"

	"repro/internal/atoms"
	"repro/internal/sim"
)

var benchCrystal = atoms.FCCLattice(6, 6, 6, 1.5496)

// BenchmarkBonds measures real bond detection on an 864-atom crystal.
func BenchmarkBonds(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adj := Bonds(benchCrystal, 1.5496*0.85)
		if adj.NumBonds() == 0 {
			b.Fatal("no bonds")
		}
	}
}

// BenchmarkCSym measures the central-symmetry computation.
func BenchmarkCSym(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := CSym(benchCrystal, 1.5496*0.85, 0.1)
		if len(res.P) != benchCrystal.N() {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkCNA measures common-neighbor structural labeling.
func BenchmarkCNA(b *testing.B) {
	adj := Bonds(benchCrystal, 1.5496*0.85)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := CNA(adj)
		if res.Counts[StructFCC] == 0 {
			b.Fatal("no FCC")
		}
	}
}

// BenchmarkMerge measures the Helper's aggregation of per-rank parts.
func BenchmarkMerge(b *testing.B) {
	parts := Partition(benchCrystal, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Merge(parts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostModelScalingShape is an ablation: it verifies (and times)
// that the analytic cost models used at paper scale track the measured
// small-N compute ordering — Bonds costs more than CSym, CNA more than
// Bonds per the Table I complexity classes.
func BenchmarkCostModelScalingShape(b *testing.B) {
	models := DefaultCostModels()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := int64(8819989)
		tb := models[KindBonds].ServiceTime(n, ModelSerial, 1, false)
		tc := models[KindCSym].ServiceTime(n, ModelSerial, 1, false)
		ta := models[KindCNA].ServiceTime(n, ModelSerial, 1, false)
		th := models[KindHelper].ServiceTime(n, ModelTree, 4, false)
		if !(th < tc && tc < tb && tb < ta) {
			b.Fatalf("cost ordering broken: helper=%v csym=%v bonds=%v cna=%v", th, tc, tb, ta)
		}
	}
	_ = sim.Second
}
