package smartpointer

import (
	"fmt"

	"repro/internal/atoms"
)

// Adjacency is a per-atom bond list: Adj[i] holds the indices of atoms
// bonded to atom i, the data structure Bonds feeds downstream to CSym and
// CNA.
type Adjacency struct {
	Cutoff float64
	Adj    [][]int32
}

// NumBonds returns the number of unordered bonded pairs.
func (a *Adjacency) NumBonds() int {
	n := 0
	for _, nb := range a.Adj {
		n += len(nb)
	}
	return n / 2
}

// Degree returns the bond count of atom i.
func (a *Adjacency) Degree(i int) int { return len(a.Adj[i]) }

// Bonded reports whether i and j share a bond.
func (a *Adjacency) Bonded(i, j int) bool {
	for _, k := range a.Adj[i] {
		if int(k) == j {
			return true
		}
	}
	return false
}

// Validate checks symmetry and bounds.
func (a *Adjacency) Validate() error {
	for i, nb := range a.Adj {
		for _, j := range nb {
			if int(j) < 0 || int(j) >= len(a.Adj) {
				return fmt.Errorf("smartpointer: bond %d-%d out of range", i, j)
			}
			if int(j) == i {
				return fmt.Errorf("smartpointer: self bond at %d", i)
			}
			if !a.Bonded(int(j), i) {
				return fmt.Errorf("smartpointer: asymmetric bond %d-%d", i, j)
			}
		}
	}
	return nil
}

// Bonds computes the bonded-atom adjacency for a snapshot: two atoms are
// bonded when their minimum-image distance is within cutoff. This is the
// real-algorithm counterpart of the pipeline's Bonds action.
func Bonds(s *atoms.Snapshot, cutoff float64) *Adjacency {
	cl := atoms.NewCellList(s, cutoff)
	adj := make([][]int32, s.N())
	for i := 0; i < s.N(); i++ {
		cl.ForNeighbors(i, func(j int, _ float64) {
			adj[i] = append(adj[i], int32(j))
		})
	}
	return &Adjacency{Cutoff: cutoff, Adj: adj}
}

// BrokenBonds compares a reference adjacency against the current one and
// returns the unordered pairs bonded in ref but not in cur — the signal
// CSym uses to decide a bond break (and hence a forming crack) occurred.
// Both adjacencies must cover the same atom indexing.
func BrokenBonds(ref, cur *Adjacency) [][2]int32 {
	var broken [][2]int32
	for i, nb := range ref.Adj {
		for _, j := range nb {
			if int(j) <= i {
				continue
			}
			if !cur.Bonded(i, int(j)) {
				broken = append(broken, [2]int32{int32(i), j})
			}
		}
	}
	return broken
}
