package smartpointer

import "fmt"

// Structure is a per-atom structural label from common-neighbor analysis.
type Structure uint8

// CNA structure classes.
const (
	StructOther Structure = iota
	StructFCC
	StructHCP
	StructBCC
)

// String implements fmt.Stringer.
func (s Structure) String() string {
	switch s {
	case StructFCC:
		return "FCC"
	case StructHCP:
		return "HCP"
	case StructBCC:
		return "BCC"
	case StructOther:
		return "Other"
	}
	return fmt.Sprintf("Structure(%d)", uint8(s))
}

// CNASignature is the classic (j, k, l) triplet for one bonded pair:
// j common neighbors, k bonds among them, l longest bond chain.
type CNASignature struct {
	J, K, L int
}

// CNAResult labels every atom.
type CNAResult struct {
	Labels []Structure
	// Counts tallies atoms per structure class.
	Counts map[Structure]int
}

// Fraction returns the fraction of atoms labeled st.
func (r *CNAResult) Fraction(st Structure) float64 {
	if len(r.Labels) == 0 {
		return 0
	}
	return float64(r.Counts[st]) / float64(len(r.Labels))
}

// PairSignature computes the CNA triplet for the bonded pair (i, j): the
// number of neighbors common to both, the bond count among those common
// neighbors, and the longest chain those bonds form.
func PairSignature(adj *Adjacency, i, j int) CNASignature {
	common := commonNeighbors(adj, i, j)
	k := 0
	// Bonds among common neighbors.
	bonds := make(map[int][]int, len(common))
	for a := 0; a < len(common); a++ {
		for b := a + 1; b < len(common); b++ {
			if adj.Bonded(common[a], common[b]) {
				k++
				bonds[common[a]] = append(bonds[common[a]], common[b])
				bonds[common[b]] = append(bonds[common[b]], common[a])
			}
		}
	}
	return CNASignature{J: len(common), K: k, L: longestChain(common, bonds)}
}

func commonNeighbors(adj *Adjacency, i, j int) []int {
	inI := make(map[int32]bool, len(adj.Adj[i]))
	for _, n := range adj.Adj[i] {
		inI[n] = true
	}
	var common []int
	for _, n := range adj.Adj[j] {
		if inI[n] {
			common = append(common, int(n))
		}
	}
	return common
}

// longestChain returns the longest path length (in bonds) in the small
// graph over common neighbors; exhaustive DFS is fine at CNA sizes (the
// common-neighbor sets have ≤ 6 atoms in close-packed crystals).
func longestChain(nodes []int, bonds map[int][]int) int {
	best := 0
	var dfs func(at int, visited map[int]bool, length int)
	dfs = func(at int, visited map[int]bool, length int) {
		if length > best {
			best = length
		}
		for _, nxt := range bonds[at] {
			if !visited[nxt] {
				visited[nxt] = true
				dfs(nxt, visited, length+1)
				delete(visited, nxt)
			}
		}
	}
	for _, n := range nodes {
		dfs(n, map[int]bool{n: true}, 0)
	}
	return best
}

// CNA performs common-neighbor analysis over a bond adjacency, labeling
// each atom by the multiset of its pair signatures:
//
//	FCC: 12 bonds, all (4,2,1)
//	HCP: 12 bonds, six (4,2,1) and six (4,2,2)
//	BCC: 14 bonds, eight (6,6,6) and six (4,4,4)
//
// anything else is Other (surfaces, crack faces, dislocations) — the
// "extensive structural labeling" the paper's CNA stage produces.
func CNA(adj *Adjacency) *CNAResult {
	n := len(adj.Adj)
	res := &CNAResult{Labels: make([]Structure, n), Counts: map[Structure]int{}}
	for i := 0; i < n; i++ {
		res.Labels[i] = classify(adj, i)
		res.Counts[res.Labels[i]]++
	}
	return res
}

func classify(adj *Adjacency, i int) Structure {
	deg := adj.Degree(i)
	switch deg {
	case 12:
		n421, n422 := 0, 0
		for _, j := range adj.Adj[i] {
			switch PairSignature(adj, i, int(j)) {
			case CNASignature{4, 2, 1}:
				n421++
			case CNASignature{4, 2, 2}:
				n422++
			default:
				return StructOther
			}
		}
		if n421 == 12 {
			return StructFCC
		}
		if n421 == 6 && n422 == 6 {
			return StructHCP
		}
	case 14:
		n666, n444 := 0, 0
		for _, j := range adj.Adj[i] {
			switch PairSignature(adj, i, int(j)) {
			case CNASignature{6, 6, 6}:
				n666++
			case CNASignature{4, 4, 4}:
				n444++
			default:
				return StructOther
			}
		}
		if n666 == 8 && n444 == 6 {
			return StructBCC
		}
	}
	return StructOther
}
