package smartpointer

import (
	"sort"

	"repro/internal/atoms"
)

// The paper's future-work pipeline for the CTH shock-physics code "turns
// the raw atomic data into materials fragments to allow tracking...
// both generating fragments and tracking them as they evolve in the
// simulation". This file implements that analysis over the Bonds
// adjacency: fragments are connected components of the bond graph, and
// tracking matches fragments across timesteps by shared atom identity.

// Fragment is one connected component of bonded atoms.
type Fragment struct {
	// Label is the fragment's index within its snapshot (size-ordered,
	// largest first).
	Label int
	// Atoms holds the member atom indices (ascending).
	Atoms []int32
	// IDs holds the members' stable atom IDs (ascending).
	IDs []int64
	// Centroid is the mean member position (minimum-image averaged
	// against the first member).
	Centroid atoms.Vec3
}

// Size returns the atom count.
func (f *Fragment) Size() int { return len(f.Atoms) }

// Fragments decomposes a snapshot's bond graph into connected components
// using union-find, returning them largest-first.
func Fragments(s *atoms.Snapshot, adj *Adjacency) []*Fragment {
	n := len(adj.Adj)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for i, nb := range adj.Adj {
		for _, j := range nb {
			union(int32(i), j)
		}
	}
	groups := map[int32][]int32{}
	for i := 0; i < n; i++ {
		r := find(int32(i))
		groups[r] = append(groups[r], int32(i))
	}
	frags := make([]*Fragment, 0, len(groups))
	for _, members := range groups {
		f := &Fragment{Atoms: members}
		f.IDs = make([]int64, len(members))
		for k, m := range members {
			f.IDs[k] = s.ID[m]
		}
		sort.Slice(f.IDs, func(a, b int) bool { return f.IDs[a] < f.IDs[b] })
		f.Centroid = fragmentCentroid(s, members)
		frags = append(frags, f)
	}
	sort.Slice(frags, func(a, b int) bool {
		if frags[a].Size() != frags[b].Size() {
			return frags[a].Size() > frags[b].Size()
		}
		return frags[a].IDs[0] < frags[b].IDs[0]
	})
	for i, f := range frags {
		f.Label = i
	}
	return frags
}

// fragmentCentroid averages member positions through the minimum image
// relative to the first member, so fragments spanning the periodic
// boundary get a sensible center.
func fragmentCentroid(s *atoms.Snapshot, members []int32) atoms.Vec3 {
	ref := s.Pos[members[0]]
	var sum atoms.Vec3
	for _, m := range members {
		d := s.Box.Delta(ref, s.Pos[m])
		sum = sum.Add(d)
	}
	return s.Box.Wrap(ref.Add(sum.Scale(1 / float64(len(members)))))
}

// FragmentMatch pairs a fragment in the current snapshot with its best
// ancestor in the previous one.
type FragmentMatch struct {
	// Prev and Cur are fragment labels (-1 for none: birth or death).
	Prev, Cur int
	// Shared counts atoms common to both.
	Shared int
}

// TrackFragments matches fragments across two timesteps by shared atom
// IDs: each current fragment maps to the previous fragment contributing
// most of its atoms. Unmatched previous fragments are reported as deaths
// (Cur == -1); current fragments with no ancestor are births
// (Prev == -1). A fragment that splits yields several matches with the
// same Prev — how crack-opening events read in fragment space.
func TrackFragments(prev, cur []*Fragment) []FragmentMatch {
	owner := map[int64]int{} // atom ID -> prev fragment label
	for _, f := range prev {
		for _, id := range f.IDs {
			owner[id] = f.Label
		}
	}
	var out []FragmentMatch
	matchedPrev := map[int]bool{}
	for _, f := range cur {
		votes := map[int]int{}
		for _, id := range f.IDs {
			if p, ok := owner[id]; ok {
				votes[p]++
			}
		}
		best, bestN := -1, 0
		for p, n := range votes {
			if n > bestN || (n == bestN && p < best) {
				best, bestN = p, n
			}
		}
		out = append(out, FragmentMatch{Prev: best, Cur: f.Label, Shared: bestN})
		if best >= 0 {
			matchedPrev[best] = true
		}
	}
	for _, f := range prev {
		if !matchedPrev[f.Label] {
			out = append(out, FragmentMatch{Prev: f.Label, Cur: -1})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Cur != out[b].Cur {
			if out[a].Cur == -1 {
				return false
			}
			if out[b].Cur == -1 {
				return true
			}
			return out[a].Cur < out[b].Cur
		}
		return out[a].Prev < out[b].Prev
	})
	return out
}
