// Package smartpointer implements the analytics toolkit the paper's
// pipelines run: the SmartPointer actions that ingest LAMMPS atomic data
// and annotate it for crack discovery. Each action exists twice over:
//
//   - as a real algorithm on particle snapshots (bond detection via cell
//     lists, the central-symmetry parameter, common-neighbor analysis,
//     aggregation-tree merging), exercised by the runnable examples and
//     correctness tests; and
//
//   - as a per-component cost/compute model with the characteristics of
//     the paper's Table I (complexity class, supported compute models,
//     dynamic branching), which the discrete-event experiments use to run
//     the pipeline at paper scale.
package smartpointer

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Kind identifies a SmartPointer action.
type Kind int

// The four actions of the paper's pipeline.
const (
	// KindHelper is the LAMMPS Helper aggregation tree that accepts
	// atomic bonds data from the parallel simulation.
	KindHelper Kind = iota
	// KindBonds determines whether two atoms are bonded; outputs the
	// atomic data plus an adjacency list.
	KindBonds
	// KindCSym computes the central-symmetry parameter to detect broken
	// bonds; needs one reference adjacency set from Bonds.
	KindCSym
	// KindCNA performs common-neighbor analysis for structural labeling
	// (crystals, faces, orientation).
	KindCNA
	// KindCustom is a user-defined analytics action outside the
	// SmartPointer toolkit (the paper's outlook covers S3D flame-front
	// tracking and CTH fragment detection); it is permissive — any
	// compute model — and scales by the cost model's ExponentOverride.
	KindCustom
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindHelper:
		return "Helper"
	case KindBonds:
		return "Bonds"
	case KindCSym:
		return "CSym"
	case KindCNA:
		return "CNA"
	case KindCustom:
		return "Custom"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ComputeModel is how a component can use resources (paper Table I).
type ComputeModel int

// Supported compute models.
const (
	// ModelSerial runs one instance handling every timestep.
	ModelSerial ComputeModel = iota
	// ModelRR (round-robin) runs k replicas, each handling a whole
	// timestep: throughput scales with k, per-step service time does
	// not.
	ModelRR
	// ModelParallel splits one timestep across k ranks (MPI-style):
	// per-step service time shrinks with k.
	ModelParallel
	// ModelTree is a fixed aggregation tree (the Helper).
	ModelTree
)

// String implements fmt.Stringer.
func (m ComputeModel) String() string {
	switch m {
	case ModelSerial:
		return "Serial"
	case ModelRR:
		return "RR"
	case ModelParallel:
		return "Parallel"
	case ModelTree:
		return "Tree"
	}
	return fmt.Sprintf("ComputeModel(%d)", int(m))
}

// Characteristics reproduces one row of the paper's Table I.
type Characteristics struct {
	Kind Kind
	// Complexity is the printed complexity class.
	Complexity string
	// Exponent is the complexity's growth exponent in atom count.
	Exponent float64
	// Models lists the supported compute models.
	Models []ComputeModel
	// DynamicBranching reports whether the component can re-route the
	// pipeline at runtime (only Bonds, via the CSym break detection).
	DynamicBranching bool
}

// Table1 returns the paper's Table I rows.
func Table1() []Characteristics {
	return []Characteristics{
		{KindHelper, "O(n)", 1, []ComputeModel{ModelTree}, false},
		{KindBonds, "O(n^2)", 2, []ComputeModel{ModelSerial, ModelRR, ModelParallel}, true},
		{KindCSym, "O(n)", 1, []ComputeModel{ModelSerial, ModelRR}, false},
		{KindCNA, "O(n^3)", 3, []ComputeModel{ModelSerial, ModelRR}, false},
	}
}

// CharacteristicsFor returns the Table I row for a kind. Custom
// components get a permissive row: every compute model, linear default
// scaling (override via CostModel.ExponentOverride).
func CharacteristicsFor(k Kind) Characteristics {
	for _, c := range Table1() {
		if c.Kind == k {
			return c
		}
	}
	if k == KindCustom {
		return Characteristics{
			Kind:       KindCustom,
			Complexity: "custom",
			Exponent:   1,
			Models:     []ComputeModel{ModelSerial, ModelRR, ModelParallel, ModelTree},
		}
	}
	panic("smartpointer: unknown kind")
}

// Supports reports whether the component may run under model m.
func (c Characteristics) Supports(m ComputeModel) bool {
	for _, have := range c.Models {
		if have == m {
			return true
		}
	}
	return false
}

// CostModel predicts a component's per-timestep service time at paper
// scale. Service time grows with atom count following the component's
// complexity exponent, relative to a calibrated reference point:
//
//	T(n) = Base * (n / RefAtoms)^Exponent
//
// and is divided by rank count (with an efficiency factor) only under the
// Parallel model — RR replicas do not shrink per-step time, they multiply
// throughput, exactly the distinction §III-D draws when explaining what
// "increasing a container" means for each model.
type CostModel struct {
	Kind Kind
	// Base is the serial per-step service time at RefAtoms.
	Base sim.Time
	// RefAtoms anchors the scaling curve.
	RefAtoms int64
	// ParallelEff in (0,1] discounts parallel speedup per doubling.
	ParallelEff float64
	// CrackFactor multiplies service time once crack formation is in
	// the data (deformation makes neighborhoods irregular and analysis
	// slower); 0 means 1.0.
	CrackFactor float64
	// ExponentOverride, when > 0, replaces the Table I complexity
	// exponent (custom components declare their own scaling).
	ExponentOverride float64
}

// refAtoms256 is the 256-node Table II atom count, the calibration anchor.
const refAtoms256 = 8819989

// DefaultCostModels returns the calibration used by the experiments. The
// constants are chosen so that, at the paper's scales and 15 s output
// cadence, the pipeline reproduces the evaluation's qualitative behaviour:
// Helper is over-provisioned and fast, Bonds is the bottleneck whose
// required replica count grows past the staging area at 1024 nodes, CSym
// tracks linearly, and CNA is affordable only when cracks make it
// necessary.
func DefaultCostModels() map[Kind]CostModel {
	return map[Kind]CostModel{
		KindHelper: {Kind: KindHelper, Base: 2 * sim.Second, RefAtoms: refAtoms256,
			ParallelEff: 0.95},
		KindBonds: {Kind: KindBonds, Base: 48 * sim.Second, RefAtoms: refAtoms256,
			ParallelEff: 0.95, CrackFactor: 1.3},
		KindCSym: {Kind: KindCSym, Base: 8 * sim.Second, RefAtoms: refAtoms256,
			ParallelEff: 0.9, CrackFactor: 1.2},
		KindCNA: {Kind: KindCNA, Base: 60 * sim.Second, RefAtoms: refAtoms256,
			ParallelEff: 0.9, CrackFactor: 1.5},
	}
}

// ServiceTime returns the per-step service time for nAtoms under the
// given compute model with k ranks/replicas.
func (cm CostModel) ServiceTime(nAtoms int64, model ComputeModel, k int, crack bool) sim.Time {
	if k < 1 {
		k = 1
	}
	exp := CharacteristicsFor(cm.Kind).Exponent
	if cm.ExponentOverride > 0 {
		exp = cm.ExponentOverride
	}
	scale := powf(float64(nAtoms)/float64(cm.RefAtoms), exp)
	t := sim.Time(float64(cm.Base) * scale)
	if crack && cm.CrackFactor > 0 {
		t = sim.Time(float64(t) * cm.CrackFactor)
	}
	if model == ModelParallel && k > 1 {
		eff := cm.ParallelEff
		if eff <= 0 || eff > 1 {
			eff = 1
		}
		// Amdahl-flavored discount: speedup = k * eff^log2(k).
		speedup := float64(k) * powf(eff, log2(float64(k)))
		if speedup < 1 {
			speedup = 1
		}
		t = sim.Time(float64(t) / speedup)
	}
	if model == ModelTree && k > 1 {
		// Tree levels add log-depth latency but split ingest.
		t = sim.Time(float64(t)/float64(k)) + sim.Time(log2(float64(k))*float64(t)*0.05)
	}
	return t
}

// ThroughputPeriod returns the minimum sustainable inter-step period for
// the model with k ranks/replicas: RR replicas divide it, parallel ranks
// shrink the service time itself.
func (cm CostModel) ThroughputPeriod(nAtoms int64, model ComputeModel, k int, crack bool) sim.Time {
	st := cm.ServiceTime(nAtoms, model, k, crack)
	if model == ModelRR && k > 1 {
		// Replicas take alternate steps: k-fold throughput.
		return st / sim.Time(k)
	}
	// Serial/Parallel/Tree process one step at a time at the (possibly
	// k-scaled) service time.
	return st
}

// ReplicasToSustain returns the smallest replica count that keeps the
// component's throughput period at or below the output period, capped at
// max (0 if even max is insufficient). Local managers use this to answer
// the global manager's "what do you need to speed up?" question.
func (cm CostModel) ReplicasToSustain(nAtoms int64, model ComputeModel, period sim.Time, crack bool, max int) int {
	for k := 1; k <= max; k++ {
		if cm.ThroughputPeriod(nAtoms, model, k, crack) <= period {
			return k
		}
	}
	return 0
}

func powf(x, e float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, e)
}

func log2(x float64) float64 { return math.Log2(x) }
