package smartpointer

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/atoms"
	"repro/internal/lammps"
	"repro/internal/sim"
)

// fccCutoff picks a bond cutoff between the first (a/√2 ≈ 0.707a) and
// second (a) FCC neighbor shells.
func fccCutoff(a float64) float64 { return a * 0.85 }

func TestBondsPerfectFCC(t *testing.T) {
	a := 1.5496
	s := atoms.FCCLattice(4, 4, 4, a)
	adj := Bonds(s, fccCutoff(a))
	if err := adj.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.N(); i++ {
		if adj.Degree(i) != 12 {
			t.Fatalf("atom %d degree %d, want 12", i, adj.Degree(i))
		}
	}
	if adj.NumBonds() != s.N()*12/2 {
		t.Fatalf("bonds %d", adj.NumBonds())
	}
}

func TestBrokenBondsDetectsNotch(t *testing.T) {
	a := 1.5496
	s := atoms.FCCLattice(5, 5, 5, a)
	ref := Bonds(s, fccCutoff(a))
	// Carving a notch removes atoms; rebuild adjacency over the same
	// indexing by displacing the notch atoms far instead of deleting.
	cur := s.Clone()
	moved := 0
	for i := range cur.Pos {
		if cur.Pos[i][0] < a && cur.Pos[i][1] < cur.Box.L[1]/2 {
			cur.Pos[i][2] = math.Mod(cur.Pos[i][2]+cur.Box.L[2]/2, cur.Box.L[2])
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("test setup moved nothing")
	}
	curAdj := Bonds(cur, fccCutoff(a))
	broken := BrokenBonds(ref, curAdj)
	if len(broken) == 0 {
		t.Fatal("no broken bonds detected")
	}
	// No broken bonds in the identity case.
	if got := BrokenBonds(ref, ref); len(got) != 0 {
		t.Fatalf("self-comparison broke %d bonds", len(got))
	}
}

func TestCSymPerfectCrystalNearZero(t *testing.T) {
	a := 1.5496
	s := atoms.FCCLattice(4, 4, 4, a)
	res := CSym(s, fccCutoff(a), 0.1)
	if res.Max() > 1e-9 {
		t.Fatalf("perfect crystal max csym %g, want ~0", res.Max())
	}
	if res.DefectCount() != 0 || res.BreakDetected(0.001) {
		t.Fatal("perfect crystal misclassified as defective")
	}
}

func TestCSymDetectsNotchSurface(t *testing.T) {
	a := 1.5496
	s := atoms.FCCLattice(5, 5, 5, a)
	removed := lammps.Notch(s, 1.5*a, 0.5)
	if removed == 0 {
		t.Fatal("notch empty")
	}
	res := CSym(s, fccCutoff(a), 0.1)
	if res.DefectCount() == 0 {
		t.Fatal("notch surface not detected")
	}
	if !res.BreakDetected(0.01) {
		t.Fatalf("break not detected: fraction %.3f", res.DefectFraction())
	}
	// Interior atoms must stay pristine.
	interior := 0
	for i, p := range res.P {
		pos := s.Pos[i]
		if pos[0] > 3*a && pos[0] < s.Box.L[0]-a && p < 1e-9 {
			interior++
		}
	}
	if interior == 0 {
		t.Fatal("no pristine interior found; notch test is degenerate")
	}
}

func TestCNAFCC(t *testing.T) {
	a := 1.5496
	s := atoms.FCCLattice(4, 4, 4, a)
	adj := Bonds(s, fccCutoff(a))
	res := CNA(adj)
	if res.Fraction(StructFCC) != 1 {
		t.Fatalf("FCC fraction %.3f, counts %v", res.Fraction(StructFCC), res.Counts)
	}
}

func TestCNAHCP(t *testing.T) {
	// The box must be at least ~3 cells per axis: smaller periodic
	// images distort the common-neighbor sets.
	a := 1.5
	s := atoms.HCPLattice(4, 3, 3, a)
	adj := Bonds(s, a*1.1) // capture the 12 neighbors at distance a
	for i := 0; i < s.N(); i++ {
		if adj.Degree(i) != 12 {
			t.Fatalf("HCP atom %d degree %d, want 12", i, adj.Degree(i))
		}
	}
	res := CNA(adj)
	if res.Fraction(StructHCP) != 1 {
		t.Fatalf("HCP fraction %.3f, counts %v", res.Fraction(StructHCP), res.Counts)
	}
}

func TestCNASignatureFCCPairs(t *testing.T) {
	a := 1.5496
	s := atoms.FCCLattice(4, 4, 4, a)
	adj := Bonds(s, fccCutoff(a))
	sig := PairSignature(adj, 0, int(adj.Adj[0][0]))
	if sig != (CNASignature{4, 2, 1}) {
		t.Fatalf("FCC pair signature %+v, want {4 2 1}", sig)
	}
}

func TestCNANotchedCrystalHasOtherAtoms(t *testing.T) {
	a := 1.5496
	s := atoms.FCCLattice(5, 5, 5, a)
	lammps.Notch(s, 1.5*a, 0.5)
	adj := Bonds(s, fccCutoff(a))
	res := CNA(adj)
	if res.Counts[StructOther] == 0 {
		t.Fatal("crack surface produced no Other labels")
	}
	if res.Counts[StructFCC] == 0 {
		t.Fatal("interior FCC should survive")
	}
	if got := res.Fraction(StructOther) + res.Fraction(StructFCC) + res.Fraction(StructHCP) + res.Fraction(StructBCC); math.Abs(got-1) > 1e-12 {
		t.Fatalf("fractions sum to %g", got)
	}
}

func TestStructureStrings(t *testing.T) {
	if StructFCC.String() != "FCC" || StructHCP.String() != "HCP" ||
		StructBCC.String() != "BCC" || StructOther.String() != "Other" {
		t.Fatal("structure names wrong")
	}
	if Structure(42).String() == "" {
		t.Fatal("unknown structure should format")
	}
}

func TestMergePartitionRoundTrip(t *testing.T) {
	a := 1.5496
	s := atoms.FCCLattice(4, 4, 4, a)
	s.Step = 9
	parts := Partition(s, 4)
	total := 0
	for _, p := range parts {
		total += p.N()
	}
	if total != s.N() {
		t.Fatalf("partition lost atoms: %d != %d", total, s.N())
	}
	merged, err := Merge(parts)
	if err != nil {
		t.Fatal(err)
	}
	if merged.N() != s.N() || merged.Step != 9 {
		t.Fatalf("merged n=%d step=%d", merged.N(), merged.Step)
	}
	// IDs sorted; positions must match the original by ID.
	byID := map[int64]atoms.Vec3{}
	for i, id := range s.ID {
		byID[id] = s.Pos[i]
	}
	for i, id := range merged.ID {
		if i > 0 && merged.ID[i-1] >= id {
			t.Fatal("merged IDs not strictly increasing")
		}
		if byID[id] != merged.Pos[i] {
			t.Fatalf("atom %d position mismatch", id)
		}
	}
}

func TestMergeRejectsBadParts(t *testing.T) {
	a := 1.5
	s1 := atoms.FCCLattice(2, 2, 2, a)
	s2 := atoms.FCCLattice(2, 2, 2, a)
	if _, err := Merge(nil); err == nil {
		t.Fatal("empty merge should fail")
	}
	if _, err := Merge([]*atoms.Snapshot{s1, s2}); err == nil {
		t.Fatal("duplicate IDs should fail")
	}
	s3 := atoms.FCCLattice(2, 2, 2, a)
	for i := range s3.ID {
		s3.ID[i] += int64(s1.N())
	}
	s3.Step = 5
	if _, err := Merge([]*atoms.Snapshot{s1, s3}); err == nil {
		t.Fatal("step mismatch should fail")
	}
	s3.Step = 0
	s3.Box.L[0] *= 2
	if _, err := Merge([]*atoms.Snapshot{s1, s3}); err == nil {
		t.Fatal("box mismatch should fail")
	}
}

// Property: Partition then Merge is the identity (up to ID ordering) for
// random partition counts.
func TestPartitionMergeProperty(t *testing.T) {
	a := 1.5496
	base := atoms.FCCLattice(3, 3, 3, a)
	f := func(nRaw uint8) bool {
		n := int(nRaw%8) + 1
		merged, err := Merge(Partition(base, n))
		if err != nil || merged.N() != base.N() {
			return false
		}
		for i, id := range merged.ID {
			if id != int64(i) { // FCC IDs are dense 0..N-1
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSym is invariant under rigid translation of the whole
// crystal (wrapped through the periodic box).
func TestCSymTranslationInvarianceProperty(t *testing.T) {
	a := 1.5496
	base := atoms.FCCLattice(3, 3, 3, a)
	ref := CSym(base, fccCutoff(a), 0.1)
	f := func(dx, dy, dz float64) bool {
		shift := atoms.Vec3{math.Mod(dx, 10), math.Mod(dy, 10), math.Mod(dz, 10)}
		for i := range shift {
			if math.IsNaN(shift[i]) || math.IsInf(shift[i], 0) {
				shift[i] = 0
			}
		}
		s := base.Clone()
		for i := range s.Pos {
			s.Pos[i] = s.Box.Wrap(s.Pos[i].Add(shift))
		}
		got := CSym(s, fccCutoff(a), 0.1)
		for i := range got.P {
			if math.Abs(got.P[i]-ref.P[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Characteristics(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	h := CharacteristicsFor(KindHelper)
	if h.Complexity != "O(n)" || !h.Supports(ModelTree) || h.DynamicBranching {
		t.Fatalf("Helper row %+v", h)
	}
	b := CharacteristicsFor(KindBonds)
	if b.Complexity != "O(n^2)" || !b.DynamicBranching ||
		!b.Supports(ModelSerial) || !b.Supports(ModelRR) || !b.Supports(ModelParallel) {
		t.Fatalf("Bonds row %+v", b)
	}
	c := CharacteristicsFor(KindCSym)
	if c.Complexity != "O(n)" || c.DynamicBranching || c.Supports(ModelParallel) {
		t.Fatalf("CSym row %+v", c)
	}
	n := CharacteristicsFor(KindCNA)
	if n.Complexity != "O(n^3)" || n.Supports(ModelTree) {
		t.Fatalf("CNA row %+v", n)
	}
	if KindHelper.String() != "Helper" || KindCNA.String() != "CNA" {
		t.Fatal("kind names wrong")
	}
	if ModelRR.String() != "RR" || ModelTree.String() != "Tree" {
		t.Fatal("model names wrong")
	}
}

func TestCostModelScaling(t *testing.T) {
	models := DefaultCostModels()
	bonds := models[KindBonds]
	ref := int64(refAtoms256)
	t1 := bonds.ServiceTime(ref, ModelSerial, 1, false)
	if t1 != bonds.Base {
		t.Fatalf("reference service time %v, want %v", t1, bonds.Base)
	}
	// O(n^2): doubling atoms quadruples time.
	t2 := bonds.ServiceTime(2*ref, ModelSerial, 1, false)
	ratio := float64(t2) / float64(t1)
	if math.Abs(ratio-4) > 0.01 {
		t.Fatalf("O(n^2) ratio %g, want 4", ratio)
	}
	// CSym is O(n): doubling doubles.
	cs := models[KindCSym]
	ratio = float64(cs.ServiceTime(2*ref, ModelSerial, 1, false)) /
		float64(cs.ServiceTime(ref, ModelSerial, 1, false))
	if math.Abs(ratio-2) > 0.01 {
		t.Fatalf("O(n) ratio %g, want 2", ratio)
	}
	// CNA is O(n^3).
	cna := models[KindCNA]
	ratio = float64(cna.ServiceTime(2*ref, ModelSerial, 1, false)) /
		float64(cna.ServiceTime(ref, ModelSerial, 1, false))
	if math.Abs(ratio-8) > 0.01 {
		t.Fatalf("O(n^3) ratio %g, want 8", ratio)
	}
}

func TestCostModelComputeModels(t *testing.T) {
	bonds := DefaultCostModels()[KindBonds]
	ref := int64(refAtoms256)
	serial := bonds.ServiceTime(ref, ModelSerial, 1, false)
	// RR does not shrink service time but multiplies throughput.
	if got := bonds.ServiceTime(ref, ModelRR, 4, false); got != serial {
		t.Fatalf("RR service time %v, want %v", got, serial)
	}
	if got := bonds.ThroughputPeriod(ref, ModelRR, 4, false); got != serial/4 {
		t.Fatalf("RR throughput period %v, want %v", got, serial/4)
	}
	// Parallel shrinks service time, sublinearly.
	par := bonds.ServiceTime(ref, ModelParallel, 4, false)
	if par >= serial || par <= serial/4 {
		t.Fatalf("parallel service time %v vs serial %v: want sublinear speedup", par, serial)
	}
	// Crack factor raises cost.
	if got := bonds.ServiceTime(ref, ModelSerial, 1, true); got <= serial {
		t.Fatalf("crack time %v should exceed %v", got, serial)
	}
}

func TestReplicasToSustain(t *testing.T) {
	bonds := DefaultCostModels()[KindBonds]
	period := 15 * sim.Second
	// 256 nodes: 48s serial -> 4 RR replicas sustain 15s cadence.
	if got := bonds.ReplicasToSustain(refAtoms256, ModelRR, period, false, 32); got != 4 {
		t.Fatalf("256-node replicas %d, want 4", got)
	}
	// 512 nodes: 192s serial -> 13 replicas.
	if got := bonds.ReplicasToSustain(2*refAtoms256, ModelRR, period, false, 32); got != 13 {
		t.Fatalf("512-node replicas %d, want 13", got)
	}
	// 1024 nodes: 768s serial -> 52 replicas, beyond a 24-node staging
	// area: insufficient (0), the Fig. 9 offline trigger.
	if got := bonds.ReplicasToSustain(4*refAtoms256, ModelRR, period, false, 24); got != 0 {
		t.Fatalf("1024-node replicas %d, want 0 (insufficient)", got)
	}
	if got := bonds.ReplicasToSustain(4*refAtoms256, ModelRR, period, false, 64); got != 52 {
		t.Fatalf("1024-node unlimited replicas %d, want 52", got)
	}
}

func TestHelperIsFastAndOverProvisioned(t *testing.T) {
	helper := DefaultCostModels()[KindHelper]
	st := helper.ServiceTime(refAtoms256, ModelTree, 4, false)
	if st >= 15*sim.Second {
		t.Fatalf("helper service time %v should beat the output period", st)
	}
	// Even a decreased helper sustains the cadence (the Fig. 7 steal).
	if got := helper.ThroughputPeriod(refAtoms256, ModelTree, 2, false); got >= 15*sim.Second {
		t.Fatalf("decreased helper period %v", got)
	}
}
