package combustion

import "testing"

// BenchmarkAdvance measures one explicit integration step of a
// 400x32 field.
func BenchmarkAdvance(b *testing.B) {
	f, err := NewField(400, 32, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	f.Ignite(40, nil)
	dt := 0.9 * f.MaxStableDt(1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Advance(dt, 1.0, 4.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtractFront measures front extraction.
func BenchmarkExtractFront(b *testing.B) {
	f, _ := NewField(400, 32, 0.25)
	f.Ignite(200, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr := ExtractFront(f, 0.5)
		if fr.Valid() == 0 {
			b.Fatal("no front")
		}
	}
}
