// Package combustion is the S3D-flavored workload surrogate for the
// paper's "current work": flame front tracking and visualization for a
// combustion modeling code. It provides a 2-D reaction–diffusion model of
// a premixed flame (Fisher–KPP progress variable) plus the front
// analytics the pipeline would run in a container: iso-level front
// extraction, front length/wrinkling, and front tracking across steps.
//
// The model is small but physically honest: the progress variable obeys
//
//	∂c/∂t = D ∇²c + r·c·(1−c)
//
// whose planar front travels at the classical speed v = 2·√(D·r) — the
// validation target of the package's tests.
package combustion

import (
	"fmt"
	"math"
)

// Field is a 2-D scalar progress-variable field: c=0 unburnt, c=1 burnt.
// The x boundaries are zero-flux (inflow/outflow walls); y is periodic.
type Field struct {
	NX, NY int
	// DX is the grid spacing (same in both directions).
	DX float64
	// C holds the field row-major: C[j*NX+i].
	C []float64
	// Step counts integration steps taken.
	Step int64
}

// NewField allocates an all-unburnt field.
func NewField(nx, ny int, dx float64) (*Field, error) {
	if nx < 3 || ny < 1 || dx <= 0 {
		return nil, fmt.Errorf("combustion: bad field dims %dx%d dx=%g", nx, ny, dx)
	}
	return &Field{NX: nx, NY: ny, DX: dx, C: make([]float64, nx*ny)}, nil
}

// At returns c at column i, row j.
func (f *Field) At(i, j int) float64 { return f.C[j*f.NX+i] }

// Set assigns c at column i, row j.
func (f *Field) Set(i, j int, v float64) { f.C[j*f.NX+i] = v }

// Ignite sets the region x < width (in grid columns) fully burnt,
// optionally perturbing the interface column by perturb(j) columns per
// row (nil = planar ignition).
func (f *Field) Ignite(width int, perturb func(j int) float64) {
	for j := 0; j < f.NY; j++ {
		edge := float64(width)
		if perturb != nil {
			edge += perturb(j)
		}
		for i := 0; i < f.NX; i++ {
			if float64(i) < edge {
				f.Set(i, j, 1)
			}
		}
	}
}

// MaxStableDt returns the explicit-integration stability bound for
// diffusivity D (the 2-D FTCS limit dx²/(4D)).
func (f *Field) MaxStableDt(d float64) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	return f.DX * f.DX / (4 * d)
}

// Advance integrates one explicit step of the reaction–diffusion
// equation with diffusivity d and reaction rate r. It rejects unstable
// timesteps.
func (f *Field) Advance(dt, d, r float64) error {
	if dt <= 0 {
		return fmt.Errorf("combustion: non-positive dt %g", dt)
	}
	if dt > f.MaxStableDt(d) {
		return fmt.Errorf("combustion: dt %g exceeds stability bound %g", dt, f.MaxStableDt(d))
	}
	nx, ny := f.NX, f.NY
	out := make([]float64, len(f.C))
	inv2 := 1 / (f.DX * f.DX)
	for j := 0; j < ny; j++ {
		jm := (j - 1 + ny) % ny
		jp := (j + 1) % ny
		for i := 0; i < nx; i++ {
			c := f.At(i, j)
			// Zero-flux x boundaries mirror the edge value.
			cl, cr := c, c
			if i > 0 {
				cl = f.At(i-1, j)
			}
			if i < nx-1 {
				cr = f.At(i+1, j)
			}
			lap := (cl + cr + f.At(i, jm) + f.At(i, jp) - 4*c) * inv2
			v := c + dt*(d*lap+r*c*(1-c))
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			out[j*nx+i] = v
		}
	}
	f.C = out
	f.Step++
	return nil
}

// Burnt returns the burnt fraction of the domain.
func (f *Field) Burnt() float64 {
	sum := 0.0
	for _, v := range f.C {
		sum += v
	}
	return sum / float64(len(f.C))
}

// Front is the extracted flame front: one x-position (in physical units)
// per row where c crosses the iso-level.
type Front struct {
	// X[j] is the front position of row j; NaN if the row has no
	// crossing (fully burnt or fully unburnt).
	X []float64
	// DX is the grid spacing, kept for length computations.
	DX float64
}

// ExtractFront locates the rightmost level-crossing per row with linear
// interpolation — the flame-front extraction an S3D analytics container
// performs on each arriving step.
func ExtractFront(f *Field, level float64) *Front {
	fr := &Front{X: make([]float64, f.NY), DX: f.DX}
	for j := 0; j < f.NY; j++ {
		fr.X[j] = math.NaN()
		for i := f.NX - 2; i >= 0; i-- {
			a, b := f.At(i, j), f.At(i+1, j)
			if (a >= level && b < level) || (a < level && b >= level) {
				t := (level - a) / (b - a)
				fr.X[j] = (float64(i) + t) * f.DX
				break
			}
		}
	}
	return fr
}

// Valid reports how many rows have a front crossing.
func (fr *Front) Valid() int {
	n := 0
	for _, x := range fr.X {
		if !math.IsNaN(x) {
			n++
		}
	}
	return n
}

// Mean returns the average front position over valid rows.
func (fr *Front) Mean() float64 {
	sum, n := 0.0, 0
	for _, x := range fr.X {
		if !math.IsNaN(x) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Length returns the front's arc length (periodic in y): the wrinkling
// measure flame analytics report. A planar front of NY rows has length
// NY·dx.
func (fr *Front) Length() float64 {
	n := len(fr.X)
	if n < 2 {
		return 0
	}
	total := 0.0
	for j := 0; j < n; j++ {
		xa, xb := fr.X[j], fr.X[(j+1)%n]
		if math.IsNaN(xa) || math.IsNaN(xb) {
			continue
		}
		dxp := xb - xa
		total += math.Sqrt(dxp*dxp + fr.DX*fr.DX)
	}
	return total
}

// Wrinkling returns Length normalized by the planar length (1.0 = flat).
func (fr *Front) Wrinkling() float64 {
	planar := float64(len(fr.X)) * fr.DX
	if planar == 0 {
		return 0
	}
	return fr.Length() / planar
}

// TrackFront returns the mean displacement speed between two extracted
// fronts separated by elapsed time dt — the tracking step of the
// pipeline, and the quantity validated against 2·√(D·r).
func TrackFront(prev, cur *Front, dt float64) (float64, error) {
	if dt <= 0 {
		return 0, fmt.Errorf("combustion: non-positive dt %g", dt)
	}
	if len(prev.X) != len(cur.X) {
		return 0, fmt.Errorf("combustion: row mismatch %d vs %d", len(prev.X), len(cur.X))
	}
	sum, n := 0.0, 0
	for j := range prev.X {
		if math.IsNaN(prev.X[j]) || math.IsNaN(cur.X[j]) {
			continue
		}
		sum += cur.X[j] - prev.X[j]
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("combustion: no common front rows")
	}
	return sum / float64(n) / dt, nil
}

// TheoreticalSpeed returns the Fisher–KPP planar front speed 2·√(D·r).
func TheoreticalSpeed(d, r float64) float64 { return 2 * math.Sqrt(d*r) }
