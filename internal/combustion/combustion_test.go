package combustion

import (
	"math"
	"testing"
)

func TestNewFieldValidation(t *testing.T) {
	if _, err := NewField(2, 4, 0.1); err == nil {
		t.Fatal("too-narrow field should fail")
	}
	if _, err := NewField(10, 0, 0.1); err == nil {
		t.Fatal("zero rows should fail")
	}
	if _, err := NewField(10, 4, 0); err == nil {
		t.Fatal("zero dx should fail")
	}
	f, err := NewField(10, 4, 0.1)
	if err != nil || f.Burnt() != 0 {
		t.Fatalf("fresh field: %v burnt=%g", err, f.Burnt())
	}
}

func TestIgniteAndBounds(t *testing.T) {
	f, _ := NewField(50, 8, 0.1)
	f.Ignite(10, nil)
	if got := f.Burnt(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("burnt %g, want 0.2", got)
	}
	// Advance keeps c in [0,1].
	for i := 0; i < 50; i++ {
		if err := f.Advance(0.002, 1.0, 5.0); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range f.C {
		if v < 0 || v > 1 {
			t.Fatalf("c out of bounds: %g", v)
		}
	}
	if f.Step != 50 {
		t.Fatalf("step %d", f.Step)
	}
}

func TestAdvanceRejectsUnstableDt(t *testing.T) {
	f, _ := NewField(20, 4, 0.1)
	bound := f.MaxStableDt(1.0) // 0.0025
	if math.Abs(bound-0.0025) > 1e-12 {
		t.Fatalf("stability bound %g", bound)
	}
	if err := f.Advance(2*bound, 1.0, 1.0); err == nil {
		t.Fatal("unstable dt accepted")
	}
	if err := f.Advance(-1, 1.0, 1.0); err == nil {
		t.Fatal("negative dt accepted")
	}
	if !math.IsInf(f.MaxStableDt(0), 1) {
		t.Fatal("zero diffusivity should have no bound")
	}
}

func TestExtractFrontOnStepProfile(t *testing.T) {
	f, _ := NewField(100, 4, 0.5)
	f.Ignite(30, nil) // c=1 for i<30, 0 beyond
	fr := ExtractFront(f, 0.5)
	if fr.Valid() != 4 {
		t.Fatalf("valid rows %d", fr.Valid())
	}
	// Crossing between i=29 (c=1) and i=30 (c=0) at t=0.5: x=(29.5)*dx.
	want := 29.5 * 0.5
	for _, x := range fr.X {
		if math.Abs(x-want) > 1e-9 {
			t.Fatalf("front at %g, want %g", x, want)
		}
	}
	// Planar front: wrinkling factor 1.
	if w := fr.Wrinkling(); math.Abs(w-1) > 1e-9 {
		t.Fatalf("wrinkling %g", w)
	}
}

func TestFrontAbsentRows(t *testing.T) {
	f, _ := NewField(20, 3, 1)
	// Row 0 fully burnt, rows 1..2 untouched.
	for i := 0; i < 20; i++ {
		f.Set(i, 0, 1)
	}
	fr := ExtractFront(f, 0.5)
	if !math.IsNaN(fr.X[0]) || fr.Valid() != 0 {
		t.Fatalf("expected no crossings, got %v", fr.X)
	}
	if !math.IsNaN(fr.Mean()) {
		t.Fatal("mean of empty front should be NaN")
	}
}

// TestKPPFrontSpeed validates the core physics: the traveling front moves
// at 2*sqrt(D*r) once developed.
func TestKPPFrontSpeed(t *testing.T) {
	d, r := 1.0, 4.0
	f, _ := NewField(400, 4, 0.25)
	f.Ignite(40, nil)
	dt := 0.9 * f.MaxStableDt(d)
	// Let the front develop its traveling profile (front reaches ~x=27).
	for i := 0; i < 300; i++ {
		if err := f.Advance(dt, d, r); err != nil {
			t.Fatal(err)
		}
	}
	start := ExtractFront(f, 0.5)
	steps := 800
	for i := 0; i < steps; i++ {
		if err := f.Advance(dt, d, r); err != nil {
			t.Fatal(err)
		}
	}
	end := ExtractFront(f, 0.5)
	speed, err := TrackFront(start, end, float64(steps)*dt)
	if err != nil {
		t.Fatal(err)
	}
	want := TheoreticalSpeed(d, r) // 4.0
	if math.Abs(speed-want)/want > 0.10 {
		t.Fatalf("front speed %.3f, theory %.3f (>10%% off)", speed, want)
	}
}

// TestDiffusionSmoothsWrinkles: a perturbed ignition line is wrinkled; as
// the front propagates, curvature burns out and wrinkling decays toward
// planar — the physical behaviour the front-length analytics watch for.
func TestDiffusionSmoothsWrinkles(t *testing.T) {
	d, r := 1.0, 2.0
	f, _ := NewField(300, 32, 0.25)
	f.Ignite(40, func(j int) float64 {
		return 12 * math.Sin(2*math.Pi*float64(j)/32)
	})
	dt := 0.9 * f.MaxStableDt(d)
	w0 := ExtractFront(f, 0.5).Wrinkling()
	if w0 < 1.1 {
		t.Fatalf("initial wrinkling %g; perturbation too weak for the test", w0)
	}
	for i := 0; i < 3000; i++ {
		if err := f.Advance(dt, d, r); err != nil {
			t.Fatal(err)
		}
	}
	w1 := ExtractFront(f, 0.5).Wrinkling()
	if w1 >= w0 {
		t.Fatalf("wrinkling grew: %g -> %g", w0, w1)
	}
	if w1 > 1.15 {
		t.Fatalf("front failed to flatten: %g", w1)
	}
}

func TestTrackFrontValidation(t *testing.T) {
	a := &Front{X: []float64{1, 2}, DX: 1}
	b := &Front{X: []float64{2, 3}, DX: 1}
	if _, err := TrackFront(a, b, 0); err == nil {
		t.Fatal("zero dt accepted")
	}
	c := &Front{X: []float64{1}, DX: 1}
	if _, err := TrackFront(a, c, 1); err == nil {
		t.Fatal("row mismatch accepted")
	}
	nanF := &Front{X: []float64{math.NaN(), math.NaN()}, DX: 1}
	if _, err := TrackFront(nanF, nanF, 1); err == nil {
		t.Fatal("no common rows accepted")
	}
	v, err := TrackFront(a, b, 2)
	if err != nil || math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("speed %g err %v", v, err)
	}
}
