// Faults injects a deterministic node crash into a managed pipeline and
// shows the container self-healing path end to end: the local manager
// detects the dead Bonds replica, requests a spare from the global
// manager, relaunches, and the pipeline's latency holds at its floor.
// A second run with self-healing disabled shows the gap the protocol
// closes.
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"log"

	iocontainer "repro"
)

func run(heal bool) *iocontainer.Result {
	rt, err := iocontainer.Build(iocontainer.Config{
		SimNodes:     256,
		StagingNodes: 14, // one node beyond the pipeline's 13: the spare
		Sizes:        map[string]int{"helper": 4, "bonds": 4, "csym": 2, "cna": 3},
		Steps:        40,
		CrackStep:    -1,
		Seed:         42,
		Policy: iocontainer.PolicyConfig{
			DisableManagement:  true, // isolate self-healing from resizing
			DisableSelfHealing: !heal,
		},
		Faults: &iocontainer.FaultConfig{
			// Staging node IDs start at SimNodes. helper holds 256..259,
			// bonds 260 (its manager), 261, 262, 263: kill a worker.
			Crashes: []iocontainer.FaultCrash{{Node: 261, At: 90 * iocontainer.Second}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("-- crash of a Bonds replica at t=90s, self-healing ON --")
	healed := run(true)
	for _, a := range healed.Actions {
		fmt.Printf("   %10s  %-8s %-8s %s\n", a.T, a.Kind, a.Target, a.Detail)
	}
	report(healed)

	fmt.Println("\n-- same crash, self-healing OFF --")
	gap := run(false)
	if len(gap.Actions) == 0 {
		fmt.Println("   (no management actions: the dead replica is never replaced)")
	}
	report(gap)

	he2e := healed.Recorder.Series("e2e")
	ge2e := gap.Recorder.Series("e2e")
	fmt.Printf("\nend-to-end latency at run end: healed %.1fs, unhealed %.1fs\n",
		he2e.Last().V, ge2e.Last().V)
	if he2e.Last().V < ge2e.Last().V {
		fmt.Println("the replica-restart protocol kept the pipeline at its latency floor")
	}
}

func report(res *iocontainer.Result) {
	fmt.Printf("   crashed nodes %v; bonds finished with %d replicas, %d spare left\n",
		res.DownNodes, res.FinalSizes["bonds"], res.Spare)
	fmt.Printf("   %d of %d steps exited the pipeline\n", res.Exits, res.Emitted)
}
