// Midrun demonstrates the paper's interactive scenario: "a user can also
// launch a visualization code when needed" and "add this filter now while
// I'm looking at the output". Halfway through a managed run, the user
// launches a ParaView-style visualization container that taps a duplicate
// of the Bonds output — the existing pipeline loses nothing.
//
//	go run ./examples/midrun
package main

import (
	"fmt"
	"log"

	iocontainer "repro"
)

func main() {
	cfg := iocontainer.Config{
		SimNodes:     256,
		StagingNodes: 18, // 5 spare nodes beyond the Fig. 7 layout
		Sizes:        iocontainer.DefaultSizes(13),
		Steps:        30,
		CrackStep:    -1,
		Seed:         42,
	}
	rt, err := iocontainer.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The "user at the terminal", modeled as a simulated process.
	rt.Engine().Go("scientist", func(p *iocontainer.Proc) {
		p.Sleep(150 * iocontainer.Second)
		fmt.Println("t=150s: scientist: \"show me the bonds output while it runs\"")
		viz := iocontainer.ComponentSpec{
			Name:  "paraview",
			Kind:  iocontainer.KindCustom,
			Model: iocontainer.ModelRR,
			Cost: iocontainer.CostModel{
				Kind:             iocontainer.KindCustom,
				Base:             6 * iocontainer.Second,
				RefAtoms:         iocontainer.ScaleForNodes(256).AtomCount,
				ExponentOverride: 1,
			},
		}
		c, err := rt.GM().LaunchContainer(p, viz, 2, "bonds")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%s: paraview container up on %d nodes, tapping bonds\n",
			p.Now(), c.Size())
	})

	res, err := rt.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nmanagement record:")
	for _, a := range res.Actions {
		fmt.Printf("  t=%-9s %-9s %-9s %s\n", a.T, a.Kind, a.Target, a.Detail)
	}
	fmt.Printf("\npipeline analyzed %d/%d steps end-to-end (nothing stolen by the viz tap)\n",
		res.Exits, res.Emitted)
	fmt.Printf("paraview rendered %d frames (only steps after its launch)\n",
		rt.Container("paraview").StepsProcessed())
}
