// Flamefront shows the container framework managing a pipeline it was
// never hard-coded for: an S3D-style combustion workflow (the paper's
// "current work" target), at two levels:
//
//  1. Real physics: a reaction-diffusion flame is integrated and the
//     actual front analytics (extraction, wrinkling, tracking) run on it,
//     validating the measured front speed against theory.
//
//  2. Managed pipeline: the same workflow at scale, described entirely by
//     a JSON scenario file — ingest tree, chemistry stage, flame-front
//     extraction, tracking — with custom cost models.
//
//     go run ./examples/flamefront
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	iocontainer "repro"
)

// The scenario: chemistry is the bottleneck at this scale; the staging
// area has two spare nodes and an over-provisioned ingest tree.
const scenarioJSON = `{
  "simNodes": 512,
  "stagingNodes": 20,
  "outputPeriodSec": 10,
  "steps": 24,
  "seed": 42,
  "stages": [
    {"name": "ingest", "kind": "Helper", "model": "Tree", "nodes": 6,
     "outputFactor": 1.0, "essential": true, "minSize": 2,
     "cost": {"baseSec": 1.5, "refAtoms": 17639979}},
    {"name": "chemistry", "kind": "Custom", "model": "RR", "nodes": 3,
     "outputFactor": 0.6,
     "cost": {"baseSec": 38, "refAtoms": 17639979, "exponentOverride": 1.2}},
    {"name": "flamefront", "kind": "Custom", "model": "RR", "nodes": 4,
     "outputFactor": 0.15,
     "cost": {"baseSec": 9, "refAtoms": 17639979, "exponentOverride": 1.0}},
    {"name": "track", "kind": "Custom", "model": "Serial", "nodes": 1,
     "outputFactor": 0.05, "diskOutput": true, "slaPeriods": 3,
     "cost": {"baseSec": 2, "refAtoms": 17639979, "exponentOverride": 1.0}}
  ]
}`

func main() {
	realFlame()
	managedPipeline()
}

// realFlame integrates a premixed flame and runs the front analytics.
func realFlame() {
	fmt.Println("=== part 1: real flame physics + front analytics ===")
	d, r := 1.0, 4.0
	f, err := iocontainer.NewCombustionField(400, 32, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	// Ignite with a wrinkled interface.
	f.Ignite(40, func(j int) float64 {
		return 8 * math.Sin(2*math.Pi*float64(j)/32)
	})
	dt := 0.9 * f.MaxStableDt(d)
	prev := iocontainer.ExtractFlameFront(f, 0.5)
	fmt.Printf("ignition: front at x=%.1f, wrinkling %.3f\n", prev.Mean(), prev.Wrinkling())
	for epoch := 1; epoch <= 4; epoch++ {
		steps := 250
		for i := 0; i < steps; i++ {
			if err := f.Advance(dt, d, r); err != nil {
				log.Fatal(err)
			}
		}
		cur := iocontainer.ExtractFlameFront(f, 0.5)
		speed, err := iocontainer.TrackFlameFront(prev, cur, float64(steps)*dt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: front x=%5.1f wrinkling %.3f speed %.2f (theory %.2f) burnt %.0f%%\n",
			epoch, cur.Mean(), cur.Wrinkling(), speed,
			iocontainer.FlameSpeed(d, r), 100*f.Burnt())
		prev = cur
	}
	fmt.Println()
}

func managedPipeline() {
	fmt.Println("=== part 2: the managed S3D-style pipeline ===")
	cfg, err := iocontainer.LoadScenarioJSON(strings.NewReader(scenarioJSON))
	if err != nil {
		log.Fatal(err)
	}
	rt, err := iocontainer.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("S3D-style pipeline: ingest -> chemistry -> flamefront -> track(disk)")
	fmt.Printf("run: %d steps emitted, %d tracked to disk, %d dropped\n\n",
		res.Emitted, res.Exits, res.Dropped)

	fmt.Println("management actions:")
	if len(res.Actions) == 0 {
		fmt.Println("  (none needed)")
	}
	for _, a := range res.Actions {
		fmt.Printf("  t=%-9s %-9s %s (n=%d)\n", a.T, a.Kind, a.Target, a.N)
	}

	fmt.Println("\nfinal sizes:")
	for _, name := range []string{"ingest", "chemistry", "flamefront", "track"} {
		lat := res.Recorder.Series("latency." + name)
		fmt.Printf("  %-10s %2d nodes (%s)", name, res.FinalSizes[name], res.States[name])
		if lat.Len() > 0 {
			fmt.Printf("  latency mean %.1fs", lat.Mean())
		}
		fmt.Println()
	}

	// The tracking stage writes a real, re-readable BP stream.
	sink := rt.Container("track").DiskSink()
	if sink == nil {
		log.Fatal("track produced no disk output")
	}
	rd, err := sink.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrack wrote %d steps to stable storage\n", rd.Steps())
}
