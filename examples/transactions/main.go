// Transactions demonstrates the D2T doubly-distributed transaction
// protocol the paper evaluates for resilient management operations
// (Fig. 6): commit across hundreds of writers and a handful of readers,
// abort propagation, and consistency under injected failures.
//
//	go run ./examples/transactions
package main

import (
	"fmt"
	"log"

	iocontainer "repro"
)

func runOne(title string, cfg iocontainer.TxnConfig) iocontainer.TxnStats {
	eng := iocontainer.NewEngine(11)
	mc := iocontainer.RedSky()
	mach := iocontainer.NewMachine(eng, mc)
	tx, err := iocontainer.NewTransaction(eng, mach, cfg)
	if err != nil {
		log.Fatal(err)
	}
	var st iocontainer.TxnStats
	eng.Go("driver", func(p *iocontainer.Proc) { st = tx.Run(p) })
	eng.Run()

	fmt.Printf("%-46s %s in %9.3fms, %5d msgs, tree depth %d\n",
		title, st.Outcome, st.Duration.Milliseconds(), st.Messages, st.Depth)

	// Consistency check: every participant that decided agrees.
	for rank, o := range tx.Outcomes() {
		if o != st.Outcome {
			log.Fatalf("rank %d decided %v against coordinator's %v", rank, o, st.Outcome)
		}
	}
	return st
}

func main() {
	fmt.Println("D2T: a resource trade either completes everywhere or nowhere.")
	fmt.Println()

	runOne("512 writers : 4 readers, all healthy",
		iocontainer.TxnConfig{Writers: 512, Readers: 4})

	runOne("2048 writers : 16 readers, all healthy",
		iocontainer.TxnConfig{Writers: 2048, Readers: 16})

	runOne("512:4, writer 100 votes abort",
		iocontainer.TxnConfig{Writers: 512, Readers: 4,
			AbortVoters: map[int]bool{100: true}})

	runOne("512:4, reader crashes silently",
		iocontainer.TxnConfig{Writers: 512, Readers: 4,
			SilentRanks: map[int]bool{514: true},
			VoteTimeout: 2 * iocontainer.Second})

	fmt.Println()
	fmt.Println("scaling (the Fig. 6 sweep):")
	var prev iocontainer.TxnStats
	for _, w := range []int{128, 256, 512, 1024, 2048} {
		st := runOne(fmt.Sprintf("  %d writers : %d readers", w, w/128),
			iocontainer.TxnConfig{Writers: w, Readers: w / 128})
		if prev.Duration > 0 && st.Duration > 3*prev.Duration {
			log.Fatal("scalability regression: doubling writers should not triple time")
		}
		prev = st
	}
}
