// Crackdetect runs the paper's motivating science scenario at two levels:
//
//  1. Real physics: a Lennard-Jones FCC crystal with a notch is strained
//     until bonds break; the actual SmartPointer analyses (Bonds, CSym,
//     CNA) detect the crack and label the damaged structure.
//
//  2. Managed pipeline: the same event, at paper scale, flowing through
//     I/O containers — the crack flag triggers the dynamic branch where
//     CSym hands the pipeline over to CNA.
//
//     go run ./examples/crackdetect
package main

import (
	"fmt"
	"log"
	"math/rand"

	iocontainer "repro"
)

func main() {
	realPhysics()
	managedPipeline()
}

// realPhysics drives a small crystal to failure and watches the analyses
// find the crack.
func realPhysics() {
	fmt.Println("=== part 1: real MD + real analytics ===")
	const a = 1.5496 // LJ zero-pressure FCC lattice constant
	snap := iocontainer.FCCLattice(6, 6, 6, a)
	removed := iocontainer.Notch(snap, 1.5*a, 0.5)
	fmt.Printf("crystal: %d atoms after notching away %d\n", snap.N(), removed)

	sys := iocontainer.NewSystem(snap, iocontainer.DefaultLJ(), 0.002)
	rng := rand.New(rand.NewSource(7))
	sys.Thermalize(0.02, rng.Float64)

	bondCut := a * 0.85
	ref := iocontainer.Bonds(snap, bondCut)
	fmt.Printf("reference adjacency: %d bonds\n", ref.NumBonds())

	// Load the crystal: strain steps along x with a little dynamics in
	// between, until CSym reports a break.
	for load := 0; load < 12; load++ {
		iocontainer.ApplyStrain(snap, 0, 0.02)
		sys.Run(25)
		cs := iocontainer.CSym(snap, bondCut*1.4, 1.0)
		cur := iocontainer.Bonds(snap, bondCut)
		broken := iocontainer.BrokenBonds(ref, cur)
		fmt.Printf("  load %2d: strain=%4.1f%% defect atoms=%4d (%.1f%%) broken bonds=%d\n",
			load+1, float64(load+1)*2, cs.DefectCount(),
			100*cs.DefectFraction(), len(broken))
		// Declare the break when more than 1% of the reference bonds
		// have snapped (the notch surface alone keeps the raw defect
		// fraction elevated from the start).
		if len(broken) > ref.NumBonds()/100 {
			fmt.Println("  -> CSym detected the break; switching to CNA for structural labeling")
			res := iocontainer.CNA(cur)
			fmt.Printf("  CNA labels: FCC=%.1f%% HCP=%.1f%% Other=%.1f%% (crack faces & disorder)\n",
				100*res.Fraction(iocontainer.StructFCC),
				100*res.Fraction(iocontainer.StructHCP),
				100*res.Fraction(iocontainer.StructOther))
			break
		}
	}
	fmt.Println()
}

// managedPipeline shows the same event driving the container runtime's
// dynamic branch at paper scale.
func managedPipeline() {
	fmt.Println("=== part 2: the managed pipeline reacting to the crack ===")
	specs := iocontainer.DefaultSpecs()
	for i := range specs {
		if specs[i].Name == "csym" {
			specs[i].DeactivateOnCrack = true // hand over to CNA on break
		}
	}
	cfg := iocontainer.Config{
		SimNodes:     256,
		StagingNodes: 13,
		Specs:        specs,
		Sizes:        iocontainer.DefaultSizes(13),
		Steps:        20,
		CrackStep:    8, // crack formation appears at output step 8
		Seed:         42,
	}
	rt, err := iocontainer.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range res.Actions {
		fmt.Printf("  t=%-9s %-9s %-7s %s\n", a.T, a.Kind, a.Target, a.Detail)
	}
	fmt.Printf("steps processed: csym=%d (pre-crack) cna=%d (post-crack)\n",
		rt.Container("csym").StepsProcessed(), rt.Container("cna").StepsProcessed())
}
