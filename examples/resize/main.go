// Resize drives the container control protocols by hand — increase,
// decrease (resource stealing), and the offline transition with
// provenance — and prints each operation's measured cost breakdown, the
// way the paper's §III-D walks through them.
//
//	go run ./examples/resize
package main

import (
	"fmt"
	"log"

	iocontainer "repro"
)

func main() {
	// Management disabled: this example is the manager.
	rt, err := iocontainer.Build(iocontainer.Config{
		SimNodes:     64,
		StagingNodes: 20,
		Sizes:        map[string]int{"helper": 6, "bonds": 2, "csym": 2, "cna": 2},
		Steps:        30,
		CrackStep:    -1,
		Seed:         7,
		Policy:       iocontainer.PolicyConfig{DisableManagement: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	gm := rt.GM()
	eng := rt.Engine()
	eng.Go("operator", func(p *iocontainer.Proc) {
		p.Sleep(20 * iocontainer.Second)

		fmt.Println("-- increase: grow bonds onto the spare nodes --")
		spare := rt.TakeSpare(4)
		fmt.Printf("   spare pool had %d nodes; taking %d\n", len(spare)+gm.Spare(), len(spare))
		start := p.Now()
		inc := gm.Increase(p, "bonds", spare)
		fmt.Printf("   total %-9s = aprun launch %s (reported separately)\n", p.Now()-start, inc.Launch)
		fmt.Printf("                      + intra-container metadata exchange %s\n", inc.Intra)
		fmt.Printf("                      + manager messages %s\n", p.Now()-start-inc.Launch-inc.Intra)
		fmt.Printf("   bonds is now %d replicas\n\n", inc.Size)

		p.Sleep(30 * iocontainer.Second)

		fmt.Println("-- steal: decrease the over-provisioned helper, give the nodes to bonds --")
		start = p.Now()
		dec := gm.Decrease(p, "helper", 2)
		fmt.Printf("   decrease total %-9s: writer pause wait %s, victim drain %s\n",
			p.Now()-start, dec.PauseWait, dec.Drain)
		fmt.Printf("   released %d nodes; helper is now %d replicas\n", len(dec.Nodes), dec.Size)
		inc2 := gm.Increase(p, "bonds", dec.Nodes)
		fmt.Printf("   bonds is now %d replicas\n\n", inc2.Size)

		p.Sleep(30 * iocontainer.Second)

		fmt.Println("-- offline: prune csym; upstream bonds switches its ADIOS output to disk --")
		gm.SetOutput(p, "bonds", "csym,cna")
		off := gm.Offline(p, "csym")
		fmt.Printf("   csym offline: released %d nodes, dropped %d queued steps\n",
			len(off.Nodes), off.Dropped)
	})

	res, err := rt.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n-- final state --")
	for _, name := range []string{"helper", "bonds", "csym", "cna"} {
		fmt.Printf("   %-7s %-8s %d nodes\n", name, res.States[name], res.FinalSizes[name])
	}
	// The provenance-stamped disk output bonds produced after csym went
	// offline is a real, re-readable BP stream.
	sink := rt.Container("bonds").DiskSink()
	if sink == nil {
		log.Fatal("bonds never wrote to disk")
	}
	rd, err := sink.Finish()
	if err != nil {
		log.Fatal(err)
	}
	pg, err := rd.ReadStep(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- disk output after the offline transition --\n")
	fmt.Printf("   %d steps on disk; step %d carries provenance.pending=%q\n",
		rd.Steps(), pg.Timestep, pg.Attrs["provenance.pending"])
}
