// Quickstart: build the paper's four-stage analytics pipeline, run it
// under management, and print what the global manager did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	iocontainer "repro"
)

func main() {
	// The Fig. 7 setting: a 256-node simulation feeding a 13-node
	// staging area with no spare nodes. Bonds cannot keep up with the
	// 15-second output cadence at its initial size.
	cfg := iocontainer.Config{
		SimNodes:     256,
		StagingNodes: 13,
		Sizes:        iocontainer.DefaultSizes(13),
		Steps:        20,
		CrackStep:    -1,
		Seed:         42,
	}
	rt, err := iocontainer.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %d atoms, %.1f MB per output step, every %s\n",
		rt.Config().Scale.AtomCount, rt.Config().Scale.MB(), rt.Config().OutputPeriod)
	fmt.Printf("run: %d steps emitted, %d analyzed end-to-end, %d dropped\n\n",
		res.Emitted, res.Exits, res.Dropped)

	fmt.Println("what the global manager did:")
	for _, a := range res.Actions {
		fmt.Printf("  t=%-9s %-9s %s (n=%d)\n", a.T, a.Kind, a.Target, a.N)
	}

	fmt.Println("\nbonds per-step latency (s):")
	for _, pt := range res.Recorder.Series("latency.bonds").Points {
		bar := ""
		for i := 0.0; i < pt.V; i += 4 {
			bar += "#"
		}
		fmt.Printf("  t=%7.1fs %6.1f %s\n", pt.T.Seconds(), pt.V, bar)
	}

	fmt.Println("\nfinal container sizes:")
	for _, name := range []string{"helper", "bonds", "csym", "cna"} {
		fmt.Printf("  %-7s %d nodes (%s)\n", name, res.FinalSizes[name], res.States[name])
	}
}
