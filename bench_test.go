package iocontainer

import (
	"testing"

	"repro/internal/experiments"
)

// Each paper table and figure has one benchmark that regenerates it
// end-to-end (the benchmark's unit of work is "one full regeneration of
// the artifact's data"). Run with:
//
//	go test -bench=. -benchmem
//
// cmd/experiments prints the same artifacts as tables.

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := e.Run(int64(42 + i))
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Sections) == 0 {
			b.Fatal("empty output")
		}
	}
}

// BenchmarkTable1Characteristics regenerates Table I (SmartPointer
// analysis action characteristics).
func BenchmarkTable1Characteristics(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2DataSizes regenerates Table II (weak-scaling data
// sizes).
func BenchmarkTable2DataSizes(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig3IncreaseProtocol regenerates the Fig. 3 protocol-round
// trace.
func BenchmarkFig3IncreaseProtocol(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4Increase regenerates Fig. 4 (time to increase container
// size, swept over the increase size).
func BenchmarkFig4Increase(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5Decrease regenerates Fig. 5 (time to decrease container
// size).
func BenchmarkFig5Decrease(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6Transactions regenerates Fig. 6 (D2T transaction overhead
// across writer:reader ratios).
func BenchmarkFig6Transactions(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7Events256 regenerates Fig. 7 (256 simulation / 13 staging
// nodes: steal from Helper, grow Bonds).
func BenchmarkFig7Events256(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8Events512 regenerates Fig. 8 (512/24: insufficient but no
// overflow).
func BenchmarkFig8Events512(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9Events1024 regenerates Fig. 9 (1024/24: offline cascade
// with provenance).
func BenchmarkFig9Events1024(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10EndToEnd regenerates Fig. 10 (end-to-end latency rising,
// then dropping sharply after the bottleneck is pruned).
func BenchmarkFig10EndToEnd(b *testing.B) { benchExperiment(b, "fig10") }
