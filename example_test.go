package iocontainer_test

import (
	"fmt"

	iocontainer "repro"
)

// The Fig. 7 scenario on the public API: Bonds cannot sustain the
// 15-second output cadence at 2 nodes; the global manager steals from the
// over-provisioned Helper and grows Bonds.
func Example() {
	rt, err := iocontainer.Build(iocontainer.Config{
		SimNodes:     256,
		StagingNodes: 13,
		Sizes:        iocontainer.DefaultSizes(13),
		Steps:        20,
		CrackStep:    -1,
		Seed:         42,
	})
	if err != nil {
		panic(err)
	}
	res, err := rt.Run()
	if err != nil {
		panic(err)
	}
	for _, a := range res.Actions {
		fmt.Printf("%s %s %d\n", a.Kind, a.Target, a.N)
	}
	fmt.Printf("analyzed %d/%d steps\n", res.Exits, res.Emitted)
	// Output:
	// decrease helper 2
	// increase bonds 2
	// analyzed 20/20 steps
}

// Table II's weak-scaling model.
func ExampleScaleForNodes() {
	for _, nodes := range []int{256, 512, 1024} {
		s := iocontainer.ScaleForNodes(nodes)
		fmt.Printf("%d nodes: %d atoms, %.1f MB/step\n", nodes, s.AtomCount, s.MB())
	}
	// Output:
	// 256 nodes: 8819989 atoms, 67.3 MB/step
	// 512 nodes: 17639979 atoms, 134.6 MB/step
	// 1024 nodes: 35279958 atoms, 269.2 MB/step
}

// Real analytics on a real crystal: a perfect FCC lattice is fully
// (4,2,1)-classified, with zero central-symmetry defects.
func ExampleCNA() {
	const a = 1.5496
	crystal := iocontainer.FCCLattice(4, 4, 4, a)
	adj := iocontainer.Bonds(crystal, 0.85*a)
	labels := iocontainer.CNA(adj)
	defects := iocontainer.CSym(crystal, 0.85*a, 0.1)
	fmt.Printf("%d atoms, %d bonds\n", crystal.N(), adj.NumBonds())
	fmt.Printf("FCC fraction %.2f, defects %d\n",
		labels.Fraction(iocontainer.StructFCC), defects.DefectCount())
	// Output:
	// 256 atoms, 1536 bonds
	// FCC fraction 1.00, defects 0
}

// D2T control transactions: a healthy trade commits; all participants
// agree.
func ExampleNewTransaction() {
	eng := iocontainer.NewEngine(7)
	mach := iocontainer.NewMachine(eng, iocontainer.RedSky())
	tx, err := iocontainer.NewTransaction(eng, mach, iocontainer.TxnConfig{
		Writers: 512,
		Readers: 4,
	})
	if err != nil {
		panic(err)
	}
	var st iocontainer.TxnStats
	eng.Go("driver", func(p *iocontainer.Proc) { st = tx.Run(p) })
	eng.Run()
	fmt.Printf("%v, %d participants decided\n", st.Outcome, st.Decided)
	// Output:
	// committed, 516 participants decided
}
