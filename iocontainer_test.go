package iocontainer

import "testing"

// The facade tests exercise the public API exactly as the examples do,
// keeping the aliases honest.

func TestPublicQuickstart(t *testing.T) {
	cfg := Config{
		SimNodes:     256,
		StagingNodes: 13,
		Sizes:        DefaultSizes(13),
		Steps:        10,
		CrackStep:    -1,
		Seed:         1,
	}
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != 10 {
		t.Fatalf("emitted %d", res.Emitted)
	}
}

func TestPublicTables(t *testing.T) {
	if len(Table1()) != 4 {
		t.Fatal("Table1 rows")
	}
	if len(Table2()) != 3 {
		t.Fatal("Table2 rows")
	}
	if ScaleForNodes(256).AtomCount != 8819989 {
		t.Fatal("scale drifted")
	}
	if len(DefaultCostModels()) != 4 {
		t.Fatal("cost models")
	}
	if len(DefaultSpecs()) != 4 {
		t.Fatal("default specs")
	}
	specs := SpecsWithBondsModel(ModelParallel)
	found := false
	for _, s := range specs {
		if s.Kind == KindBonds && s.Model == ModelParallel {
			found = true
		}
	}
	if !found {
		t.Fatal("bonds model override missing")
	}
}

func TestPublicMachines(t *testing.T) {
	if Franklin().Nodes != 9572 || RedSky().Nodes != 2823 {
		t.Fatal("machine configs drifted")
	}
}

func TestPublicExperiments(t *testing.T) {
	if len(Experiments()) != 10 {
		t.Fatalf("experiment count %d", len(Experiments()))
	}
	e, ok := ExperimentByID("table1")
	if !ok {
		t.Fatal("table1 missing")
	}
	out, err := e.Run(1)
	if err != nil || out.ID != "table1" {
		t.Fatal(err)
	}
}

func TestPublicOutcomes(t *testing.T) {
	if TxnCommitted.String() != "committed" || TxnAborted.String() != "aborted" {
		t.Fatal("txn outcomes")
	}
	if Second != 1000*Millisecond || Minute != 60*Second {
		t.Fatal("durations")
	}
	_ = Microsecond
}
