package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the CLI to analyze.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestExitNonzeroOnSeededViolation is the acceptance demonstration: a
// seeded simtime violation makes the binary exit 1 with a file:line
// diagnostic.
func TestExitNonzeroOnSeededViolation(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module seeded\n\ngo 1.22\n",
		"internal/clock/clock.go": `package clock

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	var out, errOut strings.Builder
	code := run([]string{root + "/..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout=%q stderr=%q", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "clock.go:5") || !strings.Contains(out.String(), "[simtime]") {
		t.Errorf("diagnostic output %q missing file:line or rule tag", out.String())
	}
}

// TestExitZeroOnCleanModule covers the passing path and the suppression
// path in one module.
func TestExitZeroOnCleanModule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module clean\n\ngo 1.22\n",
		"internal/clock/clock.go": `package clock

import "time"

//iocheck:allow simtime boot stamp only, never enters the event schedule
func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	var out, errOut strings.Builder
	if code := run([]string{root + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q stderr=%q", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean run printed %q, want silence", out.String())
	}
	// -v surfaces the audited site.
	out.Reset()
	if code := run([]string{"-v", root + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("verbose exit = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "suppressed: boot stamp only") {
		t.Errorf("verbose output %q does not show the suppressed finding", out.String())
	}
}

func TestBadUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"no-dots"}, &out, &errOut); code != 2 {
		t.Errorf("pattern without /...: exit = %d, want 2", code)
	}
	if code := run([]string{"-rules", "nosuch", "./..."}, &out, &errOut); code != 2 {
		t.Errorf("unknown rule: exit = %d, want 2", code)
	}
}

// TestRulesFilter pins that -rules narrows the suite: the seeded simtime
// violation is invisible to a maprange-only run.
func TestRulesFilter(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module filtered\n\ngo 1.22\n",
		"internal/clock/clock.go": `package clock

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	var out, errOut strings.Builder
	if code := run([]string{"-rules", "maprange", root + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q", code, out.String())
	}
}

// TestExitCodeSplit pins the contract: 1 means findings, 2 means the run
// itself could not proceed (usage or load errors), and the unknown-rule
// message lands on stderr.
func TestExitCodeSplit(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module split\n\ngo 1.22\n",
		"internal/clock/clock.go": `package clock

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	var out, errOut strings.Builder
	if code := run([]string{root + "/..."}, &out, &errOut); code != 1 {
		t.Errorf("findings: exit = %d, want 1", code)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-rules", "nosuch", root + "/..."}, &out, &errOut); code != 2 {
		t.Errorf("unknown rule: exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), `unknown analyzer "nosuch"`) {
		t.Errorf("unknown-rule message missing from stderr: %q", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{filepath.Join(root, "nope") + "/..."}, &out, &errOut); code != 2 {
		t.Errorf("unloadable tree: exit = %d, want 2; stderr=%q", code, errOut.String())
	}
}

// TestDeterministicOutput runs the binary twice over a module with
// several findings and requires byte-identical stdout.
func TestDeterministicOutput(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module det\n\ngo 1.22\n",
		"internal/a/a.go": `package a

import "time"

func A() int64 { return time.Now().UnixNano() }
func B() int64 { return time.Now().UnixNano() }
`,
		"internal/b/b.go": `package b

import "time"

func C() int64 { return time.Now().UnixNano() }
`,
	})
	render := func(extra ...string) string {
		var out, errOut strings.Builder
		run(append(extra, root+"/..."), &out, &errOut)
		return out.String()
	}
	if first, second := render(), render(); first != second || first == "" {
		t.Errorf("text output not byte-identical across runs:\n%q\n%q", first, second)
	}
	if first, second := render("-json"), render("-json"); first != second {
		t.Errorf("json output not byte-identical across runs:\n%q\n%q", first, second)
	}
}

// TestJSONOutput checks shape and sortedness of -json mode, including a
// suppressed entry with its audit reason.
func TestJSONOutput(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module jsonmod\n\ngo 1.22\n",
		"internal/clock/clock.go": `package clock

import "time"

//iocheck:allow simtime boot stamp only, audited
func Stamp() int64 { return time.Now().UnixNano() }

func Bad() int64 { return time.Now().UnixNano() }
`,
	})
	var out, errOut strings.Builder
	if code := run([]string{"-json", root + "/..."}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1 (one unsuppressed finding); stderr=%q", code, errOut.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (one suppressed, one not): %+v", len(diags), diags)
	}
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		return diags[i].Col < diags[j].Col
	}) {
		t.Errorf("json diagnostics not sorted by position: %+v", diags)
	}
	var suppressed, unsuppressed int
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
			if !strings.Contains(d.Reason, "boot stamp only") {
				t.Errorf("suppressed entry lost its reason: %+v", d)
			}
		} else {
			unsuppressed++
		}
	}
	if suppressed != 1 || unsuppressed != 1 {
		t.Errorf("suppressed/unsuppressed = %d/%d, want 1/1", suppressed, unsuppressed)
	}
}

// TestBaselineRatchet: a run matching the baseline passes; adding one
// more allow makes it fail; regenerating with -write-baseline passes
// again.
func TestBaselineRatchet(t *testing.T) {
	files := map[string]string{
		"go.mod": "module ratchet\n\ngo 1.22\n",
		"internal/clock/clock.go": `package clock

import "time"

//iocheck:allow simtime boot stamp only, audited
func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	root := writeModule(t, files)
	base := filepath.Join(root, "lint-baseline.json")
	var out, errOut strings.Builder
	if code := run([]string{"-write-baseline", base, root + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("write-baseline exit = %d; stderr=%q", code, errOut.String())
	}
	if code := run([]string{"-baseline", base, root + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("at-baseline exit = %d, want 0; stderr=%q", code, errOut.String())
	}
	// A second audited allow in a fresh copy of the module grows the count.
	files["internal/clock/more.go"] = `package clock

import "time"

//iocheck:allow simtime another audited stamp
func Stamp2() int64 { return time.Now().UnixNano() }
`
	grownRoot := writeModule(t, files)
	errOut.Reset()
	if code := run([]string{"-baseline", base, grownRoot + "/..."}, &out, &errOut); code != 1 {
		t.Fatalf("grown suppressions exit = %d, want 1; stderr=%q", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "baseline allows 1") {
		t.Errorf("ratchet message missing counts: %q", errOut.String())
	}
	// Regenerating the baseline accepts the new audit.
	if code := run([]string{"-write-baseline", base, grownRoot + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("regenerate exit = %d", code)
	}
	if code := run([]string{"-baseline", base, grownRoot + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("after regenerate exit = %d, want 0", code)
	}
	// A missing baseline file is a load error, not a finding.
	if code := run([]string{"-baseline", filepath.Join(root, "nope.json"), root + "/..."}, &out, &errOut); code != 2 {
		t.Fatalf("missing baseline exit = %d, want 2", code)
	}
}

// TestFindingsBaselineRatchet pins the per-rule findings half of the
// ratchet: equal counts are grandfathered, growth fails, and shrinkage
// fails too until the baseline is regenerated downward.
func TestFindingsBaselineRatchet(t *testing.T) {
	violation := `package clock

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`
	files := map[string]string{
		"go.mod":                  "module ratchetdown\n\ngo 1.22\n",
		"internal/clock/clock.go": violation,
	}
	root := writeModule(t, files)
	base := filepath.Join(root, "lint-baseline.json")
	var out, errOut strings.Builder
	if code := run([]string{"-write-baseline", base, root + "/..."}, &out, &errOut); code != 1 {
		t.Fatalf("write-baseline with findings exit = %d, want 1 (still a finding without -baseline)", code)
	}

	// Equal to baseline: grandfathered, exit 0, but the debt is announced.
	errOut.Reset()
	if code := run([]string{"-baseline", base, root + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("at-baseline exit = %d, want 0; stderr=%q", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "grandfathered") {
		t.Errorf("grandfathered run should announce the debt, stderr=%q", errOut.String())
	}

	// One more finding: growth fails.
	files["internal/clock/more.go"] = `package clock

import "time"

func Stamp2() int64 { return time.Now().UnixNano() }
`
	grownRoot := writeModule(t, files)
	errOut.Reset()
	if code := run([]string{"-baseline", base, grownRoot + "/..."}, &out, &errOut); code != 1 {
		t.Fatalf("grown findings exit = %d, want 1; stderr=%q", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "baseline grandfathers 1") {
		t.Errorf("growth message missing counts: %q", errOut.String())
	}

	// Fixing the finding makes the baseline stale: the run fails until
	// the ratchet is moved down.
	delete(files, "internal/clock/more.go")
	files["internal/clock/clock.go"] = `package clock

func Stamp() int64 { return 0 }
`
	fixedRoot := writeModule(t, files)
	errOut.Reset()
	if code := run([]string{"-baseline", base, fixedRoot + "/..."}, &out, &errOut); code != 1 {
		t.Fatalf("stale baseline exit = %d, want 1; stderr=%q", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "stale baseline") || !strings.Contains(errOut.String(), "lint-baseline") {
		t.Errorf("stale message should point at make lint-baseline: %q", errOut.String())
	}
	if code := run([]string{"-write-baseline", base, fixedRoot + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("regenerate exit = %d", code)
	}
	if code := run([]string{"-baseline", base, fixedRoot + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("after ratchet-down exit = %d, want 0; stderr=%q", code, errOut.String())
	}
}

// TestBaselineOldFormatReadsAsZeroFindings keeps pre-findings baseline
// files working: no "findings" key means nothing is grandfathered.
func TestBaselineOldFormatReadsAsZeroFindings(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module oldbase\n\ngo 1.22\n",
		"internal/clock/clock.go": `package clock

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	base := filepath.Join(root, "old.json")
	if err := os.WriteFile(base, []byte(`{"suppressed": {"simtime": 3}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-baseline", base, root + "/..."}, &out, &errOut); code != 1 {
		t.Fatalf("old-format baseline exit = %d, want 1 (finding not grandfathered); stderr=%q", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "baseline grandfathers 0") {
		t.Errorf("old-format growth message: %q", errOut.String())
	}
}

// roundViolation seeds one function that violates both protocol-lifecycle
// rules: a round Req sent with no deadline, no retry budget, and no
// terminal state.
const roundViolation = `package rounds

type Event struct {
	Type string
	Data any
}

type PingReq struct {
	Seq   int64
	Epoch int64
}

type stone struct{ q []*Event }

func (s *stone) Submit(ev *Event) { s.q = append(s.q, ev) }

type mgr struct{ out *stone }

func (m *mgr) fire(seq int64) {
	req := &PingReq{Seq: seq}
	m.out.Submit(&Event{Type: "ping", Data: req})
}
`

// TestJSONRoundRules covers -json for the two protocol-lifecycle rules:
// both report on the seeded violation, entries are position-sorted and
// stable, and two runs are byte-identical.
func TestJSONRoundRules(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                    "module rounds\n\ngo 1.22\n",
		"internal/rounds/rounds.go": roundViolation,
	})
	render := func() string {
		var out, errOut strings.Builder
		if code := run([]string{"-json", "-rules", "roundflow,roundterm", root + "/..."}, &out, &errOut); code != 1 {
			t.Fatalf("exit = %d, want 1; stderr=%q", code, errOut.String())
		}
		return out.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("json output not byte-identical across runs:\n%q\n%q", first, second)
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(first), &diags); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, first)
	}
	byRule := map[string]int{}
	for _, d := range diags {
		byRule[d.Rule]++
		if d.Line == 0 || d.File == "" {
			t.Errorf("diagnostic missing position: %+v", d)
		}
	}
	if byRule["roundflow"] != 2 {
		t.Errorf("roundflow entries = %d, want 2 (deadline + retry budget): %+v", byRule["roundflow"], diags)
	}
	if byRule["roundterm"] != 1 {
		t.Errorf("roundterm entries = %d, want 1 (dropped round): %+v", byRule["roundterm"], diags)
	}
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		return diags[i].Col < diags[j].Col
	}) {
		t.Errorf("json diagnostics not position-sorted: %+v", diags)
	}
}

// TestRosterThirteenRules pins the CLI side of the roster: all thirteen
// rule names resolve through -rules, including the two protocol-lifecycle
// rules.
func TestRosterThirteenRules(t *testing.T) {
	names := []string{"simtime", "maprange", "nilrecv", "ctlmsg",
		"vtblock", "epochset", "nilflow", "maprange-deep", "dropresult",
		"hotalloc", "hotbox", "roundflow", "roundterm"}
	got, err := selectAnalyzers(strings.Join(names, ","))
	if err != nil {
		t.Fatalf("selectAnalyzers rejected the full roster: %v", err)
	}
	if len(got) != 13 {
		t.Fatalf("roster has %d analyzers, want 13", len(got))
	}
	for i, a := range got {
		if a.Name != names[i] {
			t.Errorf("analyzer[%d] = %q, want %q", i, a.Name, names[i])
		}
	}
}
