package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the CLI to analyze.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestExitNonzeroOnSeededViolation is the acceptance demonstration: a
// seeded simtime violation makes the binary exit 1 with a file:line
// diagnostic.
func TestExitNonzeroOnSeededViolation(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module seeded\n\ngo 1.22\n",
		"internal/clock/clock.go": `package clock

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	var out, errOut strings.Builder
	code := run([]string{root + "/..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout=%q stderr=%q", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "clock.go:5") || !strings.Contains(out.String(), "[simtime]") {
		t.Errorf("diagnostic output %q missing file:line or rule tag", out.String())
	}
}

// TestExitZeroOnCleanModule covers the passing path and the suppression
// path in one module.
func TestExitZeroOnCleanModule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module clean\n\ngo 1.22\n",
		"internal/clock/clock.go": `package clock

import "time"

//iocheck:allow simtime boot stamp only, never enters the event schedule
func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	var out, errOut strings.Builder
	if code := run([]string{root + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q stderr=%q", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean run printed %q, want silence", out.String())
	}
	// -v surfaces the audited site.
	out.Reset()
	if code := run([]string{"-v", root + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("verbose exit = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "suppressed: boot stamp only") {
		t.Errorf("verbose output %q does not show the suppressed finding", out.String())
	}
}

func TestBadUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"no-dots"}, &out, &errOut); code != 2 {
		t.Errorf("pattern without /...: exit = %d, want 2", code)
	}
	if code := run([]string{"-rules", "nosuch", "./..."}, &out, &errOut); code != 2 {
		t.Errorf("unknown rule: exit = %d, want 2", code)
	}
}

// TestRulesFilter pins that -rules narrows the suite: the seeded simtime
// violation is invisible to a maprange-only run.
func TestRulesFilter(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module filtered\n\ngo 1.22\n",
		"internal/clock/clock.go": `package clock

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	var out, errOut strings.Builder
	if code := run([]string{"-rules", "maprange", root + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q", code, out.String())
	}
}
