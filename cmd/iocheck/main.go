// Command iocheck runs the repository's invariant analyzers (see
// internal/analysis) over the module and exits nonzero on any unsuppressed
// diagnostic. It is wired into `make lint` and `make check`.
//
// Usage:
//
//	iocheck [-v] [-json] [-rules simtime,maprange,...]
//	        [-baseline lint-baseline.json] [-write-baseline FILE] [pattern]
//
// The pattern is a directory tree suffixed with /... (default "./..."):
// the module containing it is loaded and type-checked in full, and
// analyzers run on every package rooted under the pattern directory. The
// checker is built only on the standard library's go/ast, go/parser,
// go/token, and go/types, so it needs no network and no third-party
// modules.
//
// Diagnostics print as file:line:col: [rule] message, sorted by position
// so two runs over the same tree produce byte-identical output. -json
// prints every diagnostic (suppressed included) as a sorted JSON array
// instead. Audited exceptions are suppressed with `//iocheck:allow <rule>
// <reason>` on the flagged line or the line above; -v prints suppressed
// findings too.
//
// -baseline compares the per-rule suppression counts against a checked-in
// ratchet file: growth in audited exceptions fails the run the same way a
// new unsuppressed finding does, so allows cannot accumulate silently.
// -write-baseline regenerates that file from the current tree.
//
// Exit codes: 0 clean, 1 findings (unsuppressed diagnostics or ratchet
// growth), 2 usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iocheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verbose := fs.Bool("v", false, "also print suppressed diagnostics")
	rules := fs.String("rules", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "print all diagnostics (suppressed included) as a JSON array")
	baseline := fs.String("baseline", "", "suppression-count ratchet file; growth fails the run")
	writeBaseline := fs.String("write-baseline", "", "write current suppression counts to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pattern := "./..."
	switch fs.NArg() {
	case 0:
	case 1:
		pattern = fs.Arg(0)
	default:
		fmt.Fprintln(stderr, "iocheck: at most one package pattern is supported")
		return 2
	}
	dir, ok := strings.CutSuffix(pattern, "/...")
	if !ok {
		fmt.Fprintf(stderr, "iocheck: pattern %q must end in /...\n", pattern)
		return 2
	}
	if dir == "" {
		dir = "."
	}
	if fi, err := os.Stat(dir); err != nil {
		fmt.Fprintf(stderr, "iocheck: %v\n", err)
		return 2
	} else if !fi.IsDir() {
		fmt.Fprintf(stderr, "iocheck: pattern root %q is not a directory\n", dir)
		return 2
	}
	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "iocheck: %v\n", err)
		return 2
	}
	root, err := analysis.ModuleRoot(dir)
	if err != nil {
		fmt.Fprintf(stderr, "iocheck: %v\n", err)
		return 2
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "iocheck: %v\n", err)
		return 2
	}
	pkgs = underDir(pkgs, dir)
	diags := analysis.Run(pkgs, analyzers)
	if *writeBaseline != "" {
		if err := writeBaselineFile(*writeBaseline, diags); err != nil {
			fmt.Fprintf(stderr, "iocheck: %v\n", err)
			return 2
		}
	}
	failures := 0
	if *jsonOut {
		if err := printJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "iocheck: %v\n", err)
			return 2
		}
		for _, d := range diags {
			if !d.Suppressed {
				failures++
			}
		}
	} else {
		for _, d := range diags {
			switch {
			case !d.Suppressed:
				failures++
				fmt.Fprintln(stdout, d.String())
			case *verbose:
				fmt.Fprintf(stdout, "%s (suppressed: %s)\n", d.String(), d.SuppressReason)
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "iocheck: %d unsuppressed finding(s)\n", failures)
		return 1
	}
	if *baseline != "" {
		grown, err := checkBaseline(*baseline, diags)
		if err != nil {
			fmt.Fprintf(stderr, "iocheck: %v\n", err)
			return 2
		}
		if len(grown) > 0 {
			for _, g := range grown {
				fmt.Fprintln(stderr, "iocheck: "+g)
			}
			fmt.Fprintln(stderr, "iocheck: audited suppressions grew past the baseline; justify and regenerate with -write-baseline, or remove the allow")
			return 1
		}
	}
	return 0
}

// baselineFile is the checked-in suppression ratchet: how many audited
// //iocheck:allow exceptions each rule is permitted.
type baselineFile struct {
	Suppressed map[string]int `json:"suppressed"`
}

func suppressionCounts(diags []analysis.Diagnostic) map[string]int {
	counts := make(map[string]int)
	for _, d := range diags {
		if d.Suppressed {
			counts[d.Rule]++
		}
	}
	return counts
}

func writeBaselineFile(path string, diags []analysis.Diagnostic) error {
	data, err := json.MarshalIndent(baselineFile{Suppressed: suppressionCounts(diags)}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// checkBaseline returns a message per rule whose suppression count grew
// past the ratchet. Shrinkage is fine (and a reason to regenerate).
func checkBaseline(path string, diags []analysis.Diagnostic) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	counts := suppressionCounts(diags)
	var grown []string
	for rule, n := range counts {
		if allowed := base.Suppressed[rule]; n > allowed {
			grown = append(grown, fmt.Sprintf("rule %s has %d suppression(s), baseline allows %d", rule, n, allowed))
		}
	}
	sort.Strings(grown)
	return grown, nil
}

// jsonDiag is the -json wire form of one diagnostic. Fields marshal in
// declaration order and the input is already position-sorted, so the
// output is byte-stable across runs.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Rule       string `json:"rule"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func printJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Rule:       d.Rule,
			Message:    d.Message,
			Suppressed: d.Suppressed,
			Reason:     d.SuppressReason,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// selectAnalyzers resolves the -rules filter against the full suite.
func selectAnalyzers(filter string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if filter == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(filter, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// underDir keeps the packages rooted under dir (the pattern's subtree).
func underDir(pkgs []*analysis.Package, dir string) []*analysis.Package {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return pkgs
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		if pkg.Dir == abs || strings.HasPrefix(pkg.Dir, abs+string(filepath.Separator)) {
			out = append(out, pkg)
		}
	}
	return out
}
