// Command iocheck runs the repository's invariant analyzers (see
// internal/analysis) over the module and exits nonzero on any unsuppressed
// diagnostic. It is wired into `make lint` and `make check`.
//
// Usage:
//
//	iocheck [-v] [-json] [-rules simtime,maprange,...]
//	        [-baseline lint-baseline.json] [-write-baseline FILE] [pattern]
//
// The pattern is a directory tree suffixed with /... (default "./..."):
// the module containing it is loaded and type-checked in full, and
// analyzers run on every package rooted under the pattern directory. The
// checker is built only on the standard library's go/ast, go/parser,
// go/token, and go/types, so it needs no network and no third-party
// modules.
//
// Diagnostics print as file:line:col: [rule] message, sorted by position
// so two runs over the same tree produce byte-identical output. -json
// prints every diagnostic (suppressed included) as a sorted JSON array
// instead. Audited exceptions are suppressed with `//iocheck:allow <rule>
// <reason>` on the flagged line or the line above; -v prints suppressed
// findings too.
//
// -baseline compares the tree against a checked-in per-rule ratchet file
// with two maps: "findings" (unsuppressed diagnostics each rule is
// grandfathered) and "suppressed" (audited //iocheck:allow exceptions
// each rule is permitted). Finding growth fails the run; finding
// shrinkage also fails — the baseline is stale and must be ratcheted
// down with -write-baseline (`make lint-baseline`), so the debt level
// can only be consciously moved. Suppression counts fail only on growth.
// A baseline without a "findings" key reads as all-zero, which keeps old
// suppression-only files working. -write-baseline regenerates the file
// from the current tree.
//
// Exit codes: 0 clean, 1 findings (unsuppressed diagnostics beyond the
// baseline, a stale baseline, or ratchet growth), 2 usage or load
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iocheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verbose := fs.Bool("v", false, "also print suppressed diagnostics")
	rules := fs.String("rules", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "print all diagnostics (suppressed included) as a JSON array")
	baseline := fs.String("baseline", "", "per-rule ratchet file; finding growth fails, finding shrinkage demands regeneration")
	writeBaseline := fs.String("write-baseline", "", "write current per-rule finding and suppression counts to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pattern := "./..."
	switch fs.NArg() {
	case 0:
	case 1:
		pattern = fs.Arg(0)
	default:
		fmt.Fprintln(stderr, "iocheck: at most one package pattern is supported")
		return 2
	}
	dir, ok := strings.CutSuffix(pattern, "/...")
	if !ok {
		fmt.Fprintf(stderr, "iocheck: pattern %q must end in /...\n", pattern)
		return 2
	}
	if dir == "" {
		dir = "."
	}
	if fi, err := os.Stat(dir); err != nil {
		fmt.Fprintf(stderr, "iocheck: %v\n", err)
		return 2
	} else if !fi.IsDir() {
		fmt.Fprintf(stderr, "iocheck: pattern root %q is not a directory\n", dir)
		return 2
	}
	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "iocheck: %v\n", err)
		return 2
	}
	root, err := analysis.ModuleRoot(dir)
	if err != nil {
		fmt.Fprintf(stderr, "iocheck: %v\n", err)
		return 2
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "iocheck: %v\n", err)
		return 2
	}
	pkgs = underDir(pkgs, dir)
	diags := analysis.Run(pkgs, analyzers)
	if *writeBaseline != "" {
		if err := writeBaselineFile(*writeBaseline, diags); err != nil {
			fmt.Fprintf(stderr, "iocheck: %v\n", err)
			return 2
		}
	}
	failures := 0
	if *jsonOut {
		if err := printJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "iocheck: %v\n", err)
			return 2
		}
		for _, d := range diags {
			if !d.Suppressed {
				failures++
			}
		}
	} else {
		for _, d := range diags {
			switch {
			case !d.Suppressed:
				failures++
				fmt.Fprintln(stdout, d.String())
			case *verbose:
				fmt.Fprintf(stdout, "%s (suppressed: %s)\n", d.String(), d.SuppressReason)
			}
		}
	}
	if *baseline != "" {
		grown, stale, err := checkBaseline(*baseline, diags)
		if err != nil {
			fmt.Fprintf(stderr, "iocheck: %v\n", err)
			return 2
		}
		if len(grown) > 0 {
			for _, g := range grown {
				fmt.Fprintln(stderr, "iocheck: "+g)
			}
			fmt.Fprintln(stderr, "iocheck: findings grew past the baseline; fix them, or audit with //iocheck:allow and regenerate with -write-baseline")
			return 1
		}
		if len(stale) > 0 {
			for _, s := range stale {
				fmt.Fprintln(stderr, "iocheck: "+s)
			}
			fmt.Fprintln(stderr, "iocheck: stale baseline: finding counts shrank; ratchet down with `make lint-baseline`")
			return 1
		}
		if failures > 0 {
			fmt.Fprintf(stderr, "iocheck: %d unsuppressed finding(s) grandfathered by the baseline\n", failures)
		}
		return 0
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "iocheck: %d unsuppressed finding(s)\n", failures)
		return 1
	}
	return 0
}

// baselineFile is the checked-in per-rule ratchet: how many unsuppressed
// findings each rule is grandfathered (a debt level that may only move
// by regenerating the file) and how many audited //iocheck:allow
// exceptions each rule is permitted. A file without a "findings" key —
// the old suppression-only format — reads as all-zero findings.
type baselineFile struct {
	Findings   map[string]int `json:"findings"`
	Suppressed map[string]int `json:"suppressed"`
}

func baselineCounts(diags []analysis.Diagnostic) baselineFile {
	b := baselineFile{Findings: make(map[string]int), Suppressed: make(map[string]int)}
	for _, d := range diags {
		if d.Suppressed {
			b.Suppressed[d.Rule]++
		} else {
			b.Findings[d.Rule]++
		}
	}
	return b
}

func writeBaselineFile(path string, diags []analysis.Diagnostic) error {
	data, err := json.MarshalIndent(baselineCounts(diags), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// checkBaseline diffs the tree's per-rule counts against the ratchet
// file. grown collects finding growth and suppression growth (both fail
// outright); stale collects finding shrinkage (the baseline must be
// ratcheted down so the improvement cannot silently regress). Shrinking
// suppression counts is fine — retiring an audit needs no ceremony.
func checkBaseline(path string, diags []analysis.Diagnostic) (grown, stale []string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	counts := baselineCounts(diags)
	for _, rule := range ruleUnion(counts.Findings, base.Findings) {
		n, allowed := counts.Findings[rule], base.Findings[rule]
		switch {
		case n > allowed:
			grown = append(grown, fmt.Sprintf("rule %s has %d unsuppressed finding(s), baseline grandfathers %d", rule, n, allowed))
		case n < allowed:
			stale = append(stale, fmt.Sprintf("rule %s has %d unsuppressed finding(s), baseline still records %d", rule, n, allowed))
		}
	}
	for _, rule := range ruleUnion(counts.Suppressed, base.Suppressed) {
		if n, allowed := counts.Suppressed[rule], base.Suppressed[rule]; n > allowed {
			grown = append(grown, fmt.Sprintf("rule %s has %d suppression(s), baseline allows %d", rule, n, allowed))
		}
	}
	sort.Strings(grown)
	sort.Strings(stale)
	return grown, stale, nil
}

// ruleUnion returns the sorted union of both maps' keys.
func ruleUnion(a, b map[string]int) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for rule := range a {
		if !seen[rule] {
			seen[rule] = true
			out = append(out, rule)
		}
	}
	for rule := range b {
		if !seen[rule] {
			seen[rule] = true
			out = append(out, rule)
		}
	}
	sort.Strings(out)
	return out
}

// jsonDiag is the -json wire form of one diagnostic. Fields marshal in
// declaration order and the input is already position-sorted, so the
// output is byte-stable across runs.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Rule       string `json:"rule"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func printJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Rule:       d.Rule,
			Message:    d.Message,
			Suppressed: d.Suppressed,
			Reason:     d.SuppressReason,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// selectAnalyzers resolves the -rules filter against the full suite.
func selectAnalyzers(filter string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if filter == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(filter, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// underDir keeps the packages rooted under dir (the pattern's subtree).
func underDir(pkgs []*analysis.Package, dir string) []*analysis.Package {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return pkgs
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		if pkg.Dir == abs || strings.HasPrefix(pkg.Dir, abs+string(filepath.Separator)) {
			out = append(out, pkg)
		}
	}
	return out
}
