// Command iocheck runs the repository's invariant analyzers (see
// internal/analysis) over the module and exits nonzero on any unsuppressed
// diagnostic. It is wired into `make lint` and `make check`.
//
// Usage:
//
//	iocheck [-v] [-rules simtime,maprange,...] [pattern]
//
// The pattern is a directory tree suffixed with /... (default "./..."):
// the module containing it is loaded and type-checked in full, and
// analyzers run on every package rooted under the pattern directory. The
// checker is built only on the standard library's go/ast, go/parser,
// go/token, and go/types, so it needs no network and no third-party
// modules.
//
// Diagnostics print as file:line:col: [rule] message. Audited exceptions
// are suppressed with `//iocheck:allow <rule> <reason>` on the flagged
// line or the line above; -v prints suppressed findings too.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iocheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verbose := fs.Bool("v", false, "also print suppressed diagnostics")
	rules := fs.String("rules", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pattern := "./..."
	switch fs.NArg() {
	case 0:
	case 1:
		pattern = fs.Arg(0)
	default:
		fmt.Fprintln(stderr, "iocheck: at most one package pattern is supported")
		return 2
	}
	dir, ok := strings.CutSuffix(pattern, "/...")
	if !ok {
		fmt.Fprintf(stderr, "iocheck: pattern %q must end in /...\n", pattern)
		return 2
	}
	if dir == "" {
		dir = "."
	}
	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "iocheck: %v\n", err)
		return 2
	}
	root, err := analysis.ModuleRoot(dir)
	if err != nil {
		fmt.Fprintf(stderr, "iocheck: %v\n", err)
		return 2
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "iocheck: %v\n", err)
		return 2
	}
	pkgs = underDir(pkgs, dir)
	diags := analysis.Run(pkgs, analyzers)
	failures := 0
	for _, d := range diags {
		switch {
		case !d.Suppressed:
			failures++
			fmt.Fprintln(stdout, d.String())
		case *verbose:
			fmt.Fprintf(stdout, "%s (suppressed: %s)\n", d.String(), d.SuppressReason)
		}
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "iocheck: %d unsuppressed finding(s)\n", failures)
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -rules filter against the full suite.
func selectAnalyzers(filter string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if filter == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(filter, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// underDir keeps the packages rooted under dir (the pattern's subtree).
func underDir(pkgs []*analysis.Package, dir string) []*analysis.Package {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return pkgs
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		if pkg.Dir == abs || strings.HasPrefix(pkg.Dir, abs+string(filepath.Separator)) {
			out = append(out, pkg)
		}
	}
	return out
}
