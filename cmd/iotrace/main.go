// Command iotrace runs one scenario with causal tracing enabled and
// analyzes the result: it can export a Chrome trace_event JSON
// (chrome://tracing / Perfetto-loadable), a plain-text timeline, install
// the flight recorder, and print a critical-path report naming the
// container that dominates end-to-end latency.
//
// Usage:
//
//	iotrace -config scenarios/fig7.json [-seed 42] [-chrome out.json]
//	        [-text out.txt] [-flight flight.txt] [-critical]
//	        [-ring 65536] [-kernel]
//
// With no export flags, iotrace prints the critical-path report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	configPath := flag.String("config", "", "JSON scenario file (required)")
	seed := flag.Int64("seed", 0, "override the scenario's seed (0 = keep)")
	chromePath := flag.String("chrome", "", "write Chrome trace_event JSON here")
	textPath := flag.String("text", "", "write a plain-text timeline here")
	flightPath := flag.String("flight", "", "dump the flight recorder here on SLA violation, overflow, or crash")
	critical := flag.Bool("critical", false, "print the critical-path report (default when no export flag is given)")
	ring := flag.Int("ring", 0, "flight-recorder ring capacity in records (0 = default)")
	kernel := flag.Bool("kernel", false, "also record raw simulator-kernel events")
	flag.Parse()

	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "iotrace: -config is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg, err := scenario.LoadFile(*configPath)
	if err != nil {
		fail(err)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Trace = &trace.Config{RingCap: *ring, Kernel: *kernel}

	rt, err := core.Build(cfg)
	if err != nil {
		fail(err)
	}
	rec := rt.Tracer()
	if *flightPath != "" {
		rec.OnTrigger(func(reason string) {
			if err := dumpFlight(*flightPath, reason, rec.Records()); err != nil {
				fmt.Fprintln(os.Stderr, "iotrace: flight dump:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "iotrace: flight recorder dumped to %s (trigger: %s)\n",
				*flightPath, reason)
		})
	}
	if _, err := rt.Run(); err != nil {
		fail(err)
	}

	recs := rec.Records()
	if dropped := rec.Dropped(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "iotrace: ring evicted %d records (oldest first); raise -ring for a full trace\n", dropped)
	}
	if *chromePath != "" {
		if err := writeTo(*chromePath, recs, trace.WriteChrome); err != nil {
			fail(err)
		}
		f, err := os.Open(*chromePath)
		if err != nil {
			fail(err)
		}
		n, err := trace.ValidateChrome(f)
		f.Close()
		if err != nil {
			fail(fmt.Errorf("exported trace does not validate: %w", err))
		}
		fmt.Fprintf(os.Stderr, "iotrace: Chrome trace written to %s (%d events, validated)\n", *chromePath, n)
	}
	if *textPath != "" {
		if err := writeTo(*textPath, recs, trace.WriteText); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "iotrace: text timeline written to %s\n", *textPath)
	}
	if *critical || (*chromePath == "" && *textPath == "") {
		cp := trace.AnalyzeCriticalPath(recs)
		if err := cp.WriteReport(os.Stdout); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "iotrace:", err)
	os.Exit(1)
}

func writeTo(path string, recs []trace.Record, export func(w io.Writer, recs []trace.Record) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func dumpFlight(path, reason string, recs []trace.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(f, "# flight recorder dump  trigger=%s  records=%d\n", reason, len(recs))
	if err := trace.WriteText(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
