// Command iocontainersim runs one managed I/O-pipeline scenario and
// prints its timeline: per-container latencies, queue depths, management
// actions, and the run summary.
//
// Usage:
//
//	iocontainersim [-sim 256] [-staging 13] [-steps 20] [-period 15]
//	               [-crack -1] [-seed 42] [-parallel-bonds]
//	               [-no-management] [-no-offline] [-no-steal]
//	               [-crash-node -1] [-crash-at 60] [-no-self-heal]
//	               [-trace out.json] [-flight flight.txt]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/datatap"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/smartpointer"
	"repro/internal/trace"
)

// showCharts toggles ASCII chart output (-chart).
var showCharts bool

// tracePath / flightPath hold the -trace and -flight output files.
var tracePath, flightPath string

func main() {
	simNodes := flag.Int("sim", 256, "simulation partition size (nodes)")
	staging := flag.Int("staging", 13, "staging partition size (nodes)")
	steps := flag.Int("steps", 20, "output steps to run")
	period := flag.Float64("period", 15, "output period (virtual seconds)")
	crack := flag.Int64("crack", -1, "output step at which crack formation appears (-1: never)")
	seed := flag.Int64("seed", 42, "simulation seed")
	parallelBonds := flag.Bool("parallel-bonds", false, "run Bonds under the MPI-style parallel model")
	noMgmt := flag.Bool("no-management", false, "disable the global manager's policy (baseline)")
	noOffline := flag.Bool("no-offline", false, "never take containers offline")
	noSteal := flag.Bool("no-steal", false, "never steal nodes from other containers")
	configPath := flag.String("config", "", "JSON scenario file (overrides the other flags)")
	chart := flag.Bool("chart", false, "render ASCII charts of the key series")
	standby := flag.Bool("standby", false, "deploy a standby global manager")
	shards := flag.Int("shards", 0, "shard the control plane: per-shard managers under a meta-manager (0/1 = legacy single manager)")
	shardStandbys := flag.Int("shard-standbys", 0, "standby managers per shard (0 or 1; requires -shards > 1)")
	killGM := flag.Float64("kill-gm", 0, "kill the primary global manager at this virtual second (0 = never)")
	crashNode := flag.Int("crash-node", -1, "machine node to fail-stop (-1 = none; staging IDs start at -sim)")
	crashAt := flag.Float64("crash-at", 60, "virtual second at which -crash-node dies")
	noHeal := flag.Bool("no-self-heal", false, "disable the replica-restart protocol")
	traceFile := flag.String("trace", "", "export a Chrome trace_event JSON of the run to this file")
	flightFile := flag.String("flight", "", "on SLA violation, queue overflow, or crash, dump the flight recorder to this file")
	flag.Parse()
	showCharts = *chart
	tracePath = *traceFile
	flightPath = *flightFile

	if *configPath != "" {
		cfg, err := scenario.LoadFile(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iocontainersim:", err)
			os.Exit(1)
		}
		runAndReport(cfg)
		return
	}

	// On sharded runs the first staging nodes host the control plane
	// (meta + per-shard managers and standbys); size the containers for
	// the region that remains.
	sizeNodes := *staging
	if *shards > 1 {
		sizeNodes -= 1 + *shards*(1+*shardStandbys)
	}
	cfg := core.Config{
		SimNodes:      *simNodes,
		StagingNodes:  *staging,
		Sizes:         core.DefaultSizes(sizeNodes),
		Steps:         *steps,
		OutputPeriod:  sim.Time(*period * float64(sim.Second)),
		CrackStep:     *crack,
		Seed:          *seed,
		StandbyGM:     *standby,
		Shards:        *shards,
		ShardStandbys: *shardStandbys,
		Policy: core.PolicyConfig{
			DisableManagement:  *noMgmt,
			DisableOffline:     *noOffline,
			DisableStealing:    *noSteal,
			KillGMAt:           sim.Time(*killGM * float64(sim.Second)),
			DisableSelfHealing: *noHeal,
		},
	}
	if *parallelBonds {
		cfg.Specs = core.SpecsWithBondsModel(smartpointer.ModelParallel)
	}
	if *crashNode >= 0 {
		cfg.Faults = &fault.Config{
			Crashes: []fault.Crash{{
				Node: *crashNode,
				At:   sim.Time(*crashAt * float64(sim.Second)),
			}},
		}
	}
	runAndReport(cfg)
}

func runAndReport(cfg core.Config) {
	if (tracePath != "" || flightPath != "") && cfg.Trace == nil {
		cfg.Trace = &trace.Config{}
	}
	rt, err := core.Build(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iocontainersim:", err)
		os.Exit(1)
	}
	if flightPath != "" {
		rec := rt.Tracer()
		rec.OnTrigger(func(reason string) {
			if err := dumpFlight(flightPath, reason, rec.Records()); err != nil {
				fmt.Fprintln(os.Stderr, "iocontainersim: flight dump:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "iocontainersim: flight recorder dumped to %s (trigger: %s)\n",
				flightPath, reason)
		})
	}
	res, err := rt.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "iocontainersim:", err)
		os.Exit(1)
	}
	if tracePath != "" {
		if err := exportChrome(tracePath, rt.Tracer().Records()); err != nil {
			fmt.Fprintln(os.Stderr, "iocontainersim: trace export:", err)
			os.Exit(1)
		}
	}
	eff := rt.Config()

	fmt.Printf("scenario: %d simulation + %d staging nodes, %d steps every %s (scale: %d atoms, %.1f MB/step)\n",
		eff.SimNodes, eff.StagingNodes, eff.Steps, eff.OutputPeriod, eff.Scale.AtomCount, eff.Scale.MB())
	fmt.Println()

	fmt.Println("management actions:")
	if len(res.Actions) == 0 {
		fmt.Println("  (none)")
	}
	for _, a := range res.Actions {
		fmt.Printf("  %10s  %-10s %-8s n=%-3d %s\n", a.T, a.Kind, a.Target, a.N, a.Detail)
	}
	fmt.Println()

	fmt.Println("per-container outcome:")
	names := make([]string, 0, len(eff.Specs)+1)
	for _, spec := range eff.Specs {
		names = append(names, spec.Name)
	}
	if eff.CheckpointEvery > 0 {
		names = append(names, "checkpoint")
	}
	for _, name := range names {
		c := rt.Container(name)
		if c == nil {
			continue
		}
		lat := res.Recorder.Series("latency." + name)
		state := res.States[name]
		fmt.Printf("  %-7s %-8s %2d nodes  %3d steps processed", name, state, res.FinalSizes[name], c.StepsProcessed())
		if lat.Len() > 0 {
			fmt.Printf("  latency last/mean %.1fs/%.1fs", lat.Last().V, lat.Mean())
		}
		if prov := res.Provenance[name]; prov != "" {
			fmt.Printf("  provenance=%q", prov)
		}
		fmt.Println()
	}
	fmt.Println()

	e2e := res.Recorder.Series("e2e")
	fmt.Printf("summary: emitted=%d exited=%d dropped=%d spare=%d writer-blocked=%s e2e-samples=%d\n",
		res.Emitted, res.Exits, res.Dropped, res.Spare, res.WriterBlocked, e2e.Len())
	if len(res.DownNodes) > 0 || res.FaultStats != (fault.Stats{}) {
		fmt.Printf("faults: crashed-nodes=%v crashes=%d ctl-dropped=%d sends-failed=%d suspects=%v\n",
			res.DownNodes, res.FaultStats.CrashesFired, res.FaultStats.CtlDropped,
			res.FaultStats.SendsFailed, res.Suspects)
	}
	if e2e.Len() > 0 {
		fmt.Printf("end-to-end latency: first=%.1fs last=%.1fs\n", e2e.Points[0].V, e2e.Last().V)
	}

	printShards(res)
	printDelivery(res)
	printSubscribers(res)

	if trig, ok := rt.Tracer().Triggered(); ok && flightPath != "" {
		fmt.Printf("flight recorder: triggered (%s), dump in %s\n", trig, flightPath)
	}

	if showCharts {
		for _, name := range names {
			s := res.Recorder.Series("latency." + name)
			if s.Len() < 2 {
				continue
			}
			fmt.Printf("\nper-step latency, %s:\n", name)
			fmt.Print(metrics.Chart(s, metrics.ChartOptions{
				YLabel: "latency (s)", Markers: res.Recorder.Markers}))
		}
		if e2e.Len() >= 2 {
			fmt.Println("\nend-to-end latency:")
			fmt.Print(metrics.Chart(e2e, metrics.ChartOptions{
				YLabel: "end-to-end latency (s)", Markers: res.Recorder.Markers}))
		}
	}
}

// printShards renders the per-shard control-plane table on sharded runs
// (legacy single-manager runs have no shard summaries and print nothing).
func printShards(res *core.Result) {
	if len(res.Shards) == 0 {
		return
	}
	fmt.Println("control-plane shards:")
	fmt.Println("  shard  containers  spare  epoch  stolen-in  stolen-out  suspects  actions")
	for _, s := range res.Shards {
		fmt.Printf("  %5d  %10d  %5d  %5d  %9d  %10d  %8d  %7d\n",
			s.Shard, s.Containers, s.Spare, s.Epoch, s.StolenIn, s.StolenOut, s.Suspects, s.Actions)
	}
	fmt.Println()
}

// printDelivery summarizes each at-least-once channel's step ledger and
// any knowingly-lost steps. Best-effort channels keep no ledger and are
// skipped; a fully best-effort run prints nothing here.
func printDelivery(res *core.Result) {
	printed := false
	for _, d := range res.Delivery {
		if d.Mode != datatap.DeliveryAtLeastOnce {
			continue
		}
		if !printed {
			fmt.Println("delivery (at-least-once channels):")
			printed = true
		}
		fmt.Printf("  %-8s written=%d acked=%d redelivered=%d spilled=%d drained=%d crash-lost=%d retained=%d unaccounted=%d\n",
			d.Channel, d.StepsWritten, d.StepsAcked, d.StepsRedelivered,
			d.StepsSpilled, d.StepsDrained, d.StepsCrashLost, d.Retained, d.Unaccounted())
	}
	if len(res.DeliveryLost) > 0 {
		fmt.Printf("delivery losses (%d):\n", len(res.DeliveryLost))
		for _, l := range res.DeliveryLost {
			fmt.Printf("  %-8s step=%d reason=%s\n", l.Container, l.Step, l.Reason)
		}
	}
}

// printSubscribers summarizes the streaming fan-out fleet on runs that
// attach one (nothing is printed otherwise): the hub-wide counters, the
// fleet's worst lag, and the conservation balance.
func printSubscribers(res *core.Result) {
	if len(res.Subscribers) == 0 {
		return
	}
	hs := res.SubHub
	var crashed int
	var maxLag, unaccounted int64
	for _, s := range res.Subscribers {
		if s.Crashed {
			crashed++
		}
		if s.MaxLag > maxLag {
			maxLag = s.MaxLag
		}
		unaccounted += s.Unaccounted()
	}
	fmt.Printf("subscribers (%d, %d crashed): published=%d delivered=%d dropped=%d spilled=%d spill-reads=%d resumes=%d replays=%d\n",
		len(res.Subscribers), crashed, hs.Published, hs.Delivered, hs.Dropped,
		hs.Spilled, hs.SpillReads, hs.Resumes, hs.Replays)
	fmt.Printf("  max-lag=%d unaccounted=%d writer-stalled=%s publish-stall=%s\n",
		maxLag, unaccounted, res.WriterStalled, hs.PublishStall)
}

// exportChrome writes the recorder contents as Chrome trace_event JSON.
func exportChrome(path string, recs []trace.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dumpFlight writes a flight-recorder snapshot: a header naming the trigger,
// then the plain-text timeline of everything still in the ring.
func dumpFlight(path, reason string, recs []trace.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(f, "# flight recorder dump  trigger=%s  records=%d\n", reason, len(recs))
	if err := trace.WriteText(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
