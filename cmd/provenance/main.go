// Command provenance completes the offline half of the container
// runtime's provenance story: it reads a BP stream whose steps were
// stamped with "provenance.pending" (what an offline transition leaves
// behind), reports which analyses remain to be run, and — when steps
// carry real particle data — executes the pending SmartPointer analyses
// and writes an annotated stream.
//
// Usage:
//
//	provenance [-out annotated.bp] input.bp
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/bp"
	"repro/internal/postprocess"
)

func main() {
	outPath := flag.String("out", "", "write an annotated stream (analyses executed where possible)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: provenance [-out annotated.bp] input.bp")
		os.Exit(2)
	}
	in, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	defer in.Close()
	r, err := bp.NewReader(in)
	if err != nil {
		fail(err)
	}

	var w *bp.Writer
	var outFile *os.File
	if *outPath != "" {
		outFile, err = os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		defer outFile.Close()
		w, err = bp.NewWriter(outFile)
		if err != nil {
			fail(err)
		}
	}

	rep, err := postprocess.Analyze(r, w)
	if err != nil {
		fail(err)
	}
	if w != nil {
		if err := w.Close(); err != nil {
			fail(err)
		}
	}

	fmt.Printf("%d step(s), %d with particle data\n\n", len(rep.Steps), rep.WithData)
	for _, st := range rep.Steps {
		fmt.Printf("step %d (group %q, timestep %d):\n", st.Index, st.Group, st.Timestep)
		if len(st.Pending) == 0 {
			fmt.Println("  no pending analyses")
			continue
		}
		for _, p := range st.Pending {
			if res, ok := st.Results[p]; ok {
				fmt.Printf("  %-8s EXECUTED: %s\n", p, res)
			} else {
				fmt.Printf("  %-8s pending (no particle data in this step)\n", p)
			}
		}
	}
	counts := rep.PendingCounts()
	if len(counts) > 0 {
		var names []string
		for n := range counts {
			names = append(names, n)
		}
		sort.Strings(names)
		var parts []string
		for _, n := range names {
			parts = append(parts, fmt.Sprintf("%s: %d step(s)", n, counts[n]))
		}
		fmt.Printf("\nstill pending -> %s\n", strings.Join(parts, ", "))
	} else {
		fmt.Println("\nall provenance obligations satisfied")
	}
	if *outPath != "" {
		fmt.Printf("annotated stream written to %s\n", *outPath)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "provenance:", err)
	os.Exit(1)
}
