// Command bpdump inspects a BP (binary-pack) stream file: the step index,
// per-step variables, and attributes — including the provenance
// attributes the container runtime stamps during offline transitions.
//
// Usage:
//
//	bpdump [-steps N] file.bp
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bp"
)

func main() {
	maxSteps := flag.Int("steps", 8, "maximum steps to expand (0 = all)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bpdump [-steps N] file.bp")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpdump:", err)
		os.Exit(1)
	}
	defer f.Close()
	r, err := bp.NewReader(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpdump:", err)
		os.Exit(1)
	}
	out, err := bp.Describe(r, *maxSteps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpdump:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
