// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp all|table1|table2|fig3..fig10] [-seed N] [-csv]
//
// Each experiment prints its data series as aligned tables (or CSV) plus
// notes comparing the measured shape to what the paper reports.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, table2, fig3..fig10, extra-*), 'all', or 'extras'")
	seed := flag.Int64("seed", 42, "simulation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	list := flag.Bool("list", false, "list experiment ids and exit")
	traceDir := flag.String("trace-dir", "", "record causal traces; write one Chrome trace JSON per run into this directory")
	genShards := flag.String("gen-shards", "", "synthesize the 1,000-container sharded scenario, write it to this file, and exit")
	flag.Parse()

	if *genShards != "" {
		if err := writeShardsScenario(*genShards); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *genShards)
		return
	}

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		experiments.EnableTracing(*traceDir)
	}

	if *list {
		for _, e := range experiments.AllWithExtras() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []experiments.Experiment
	switch {
	case *exp == "all":
		todo = experiments.All()
	case *exp == "extras":
		todo = experiments.Extras()
	default:
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}

	for _, e := range todo {
		out, err := e.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *csv {
			for _, sec := range out.Sections {
				fmt.Printf("# %s: %s\n", out.ID, sec.Name)
				fmt.Print(sec.Table.CSV())
			}
			continue
		}
		fmt.Println(out.String())
	}
}

// writeShardsScenario synthesizes the 1,000-container stress scenario the
// sharded control plane exists for: a linear chain of tiny custom stages,
// 100 shard managers (one standby each) under the meta-manager, one spare
// node per shard, and a policy quiet enough that the chaos smoke exercises
// manager crashes rather than SLA churn. The output is checked in as
// scenarios/shards-1k.json; regenerate with `experiments -gen-shards`.
func writeShardsScenario(path string) error {
	const (
		nStages   = 1000
		nShards   = 100
		nStandbys = 1
		nSpares   = 100 // one per shard after the round-robin split
	)
	f := &scenario.File{
		SimNodes: 256,
		// meta + shards*(1+standbys) managers, one node per stage, spares.
		StagingNodes:    1 + nShards*(1+nStandbys) + nStages + nSpares,
		OutputPeriodSec: 5,
		Steps:           2,
		CrackStep:       -1,
		Seed:            42,
		AtomsOverride:   100_000,
		// Ring seed 25 balances best over these names: the hottest shard
		// holds 16 of the 1,000 containers, so the sharded control sweep
		// stays well under 2x the 10-container single-manager sweep.
		Shards: &scenario.ShardsSpec{Count: nShards, Seed: 25, Standbys: nStandbys},
		Policy: scenario.Policy{
			DisableOffline:  true,
			DisableStealing: true,
			CallTimeoutSec:  5,
			CallRetries:     2,
		},
	}
	for i := 0; i < nStages; i++ {
		f.Stages = append(f.Stages, scenario.Stage{
			Name:         fmt.Sprintf("s%03d", i),
			Kind:         "Custom",
			Model:        "Serial",
			Nodes:        1,
			OutputFactor: 1,
			SLAPeriods:   100, // a 1,000-deep chain is latency-bound by design
			Cost:         &scenario.Cost{BaseSec: 0.001, RefAtoms: 100_000},
		})
	}
	blob, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
