// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp all|table1|table2|fig3..fig10] [-seed N] [-csv]
//
// Each experiment prints its data series as aligned tables (or CSV) plus
// notes comparing the measured shape to what the paper reports.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, table2, fig3..fig10, extra-*), 'all', or 'extras'")
	seed := flag.Int64("seed", 42, "simulation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	list := flag.Bool("list", false, "list experiment ids and exit")
	traceDir := flag.String("trace-dir", "", "record causal traces; write one Chrome trace JSON per run into this directory")
	flag.Parse()

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		experiments.EnableTracing(*traceDir)
	}

	if *list {
		for _, e := range experiments.AllWithExtras() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []experiments.Experiment
	switch {
	case *exp == "all":
		todo = experiments.All()
	case *exp == "extras":
		todo = experiments.Extras()
	default:
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}

	for _, e := range todo {
		out, err := e.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *csv {
			for _, sec := range out.Sections {
				fmt.Printf("# %s: %s\n", out.ID, sec.Name)
				fmt.Print(sec.Table.CSV())
			}
			continue
		}
		fmt.Println(out.String())
	}
}
