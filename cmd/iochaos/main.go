// Command iochaos explores randomized fault schedules against a base
// scenario and audits every run with the chaos invariant oracles (chunk
// conservation, single-writer epochs, D2T same-decision, convergence,
// heal completeness, trace-DAG connectivity, delivery, dual ownership,
// per-subscriber conservation, and the subscriber never-block SLA).
// Failing schedules are delta-debugged to a minimal fault set and, with
// -emit, written out as runnable regression scenarios.
//
// Usage:
//
//	iochaos -scenario scenarios/chaos-failover.json [-seeds 64]
//	        [-seed-start 1] [-max-faults 4] [-workers 4]
//	        [-shrink] [-emit scenarios/regressions] [-v]
//
// Exit status is 0 when every seed passed every oracle, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/chaos"
	"repro/internal/scenario"
)

func main() {
	scenarioPath := flag.String("scenario", "", "base scenario JSON file (required)")
	seeds := flag.Int("seeds", 64, "number of consecutive seeds to explore")
	seedStart := flag.Int64("seed-start", 1, "first seed")
	maxFaults := flag.Int("max-faults", 4, "maximum faults per generated schedule")
	workers := flag.Int("workers", 4, "concurrent runs (each owns a private engine)")
	shrink := flag.Bool("shrink", true, "delta-debug failing schedules to minimal fault sets")
	emitDir := flag.String("emit", "", "write shrunk failing schedules as regression scenarios into this directory")
	verbose := flag.Bool("v", false, "print every seed, not just failures")
	flag.Parse()

	if *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "iochaos: -scenario is required")
		flag.Usage()
		os.Exit(2)
	}
	base, err := scenario.ReadFile(*scenarioPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iochaos: %v\n", err)
		os.Exit(2)
	}

	oracles := chaos.DefaultOracles()
	results := chaos.Search(chaos.SearchConfig{
		Base:      base,
		SeedStart: *seedStart,
		Seeds:     *seeds,
		Gen:       chaos.GenConfig{MaxFaults: *maxFaults},
		Oracles:   oracles,
		Workers:   *workers,
	})

	failures := 0
	emitted := map[string]bool{} // one regression per oracle keeps the corpus small
	for _, r := range results {
		if len(r.Violations) == 0 {
			if *verbose {
				fmt.Printf("seed %4d  ok    (%s)\n", r.Seed, chaos.Summarize(r.Faults))
			}
			continue
		}
		failures++
		fmt.Printf("seed %4d  FAIL  (%s)\n", r.Seed, chaos.Summarize(r.Faults))
		for _, v := range r.Violations {
			fmt.Printf("           %s\n", v)
		}
		if !*shrink {
			continue
		}
		oracle := r.Violations[0].Oracle
		minimal := chaos.Shrink(base, r.Faults, oracle, oracles)
		fmt.Printf("           shrunk %d -> %d fault(s) still violating %q\n",
			chaos.FaultCount(r.Faults), chaos.FaultCount(minimal), oracle)
		if *emitDir == "" || emitted[oracle] {
			continue
		}
		blob, err := chaos.Regression(base, minimal, scenario.ChaosMeta{
			Seed:            r.Seed,
			ExpectViolation: oracle,
			Note: fmt.Sprintf("shrunk from %d faults found by seed %d over %s",
				chaos.FaultCount(r.Faults), r.Seed, filepath.Base(*scenarioPath)),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "iochaos: %v\n", err)
			os.Exit(2)
		}
		name := fmt.Sprintf("%s-seed%d.json", oracle, r.Seed)
		path := filepath.Join(*emitDir, name)
		if err := os.MkdirAll(*emitDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "iochaos: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "iochaos: %v\n", err)
			os.Exit(2)
		}
		emitted[oracle] = true
		fmt.Printf("           regression written to %s\n", path)
	}

	fmt.Printf("chaos: %d/%d seeds passed all %d oracles\n",
		len(results)-failures, len(results), len(oracles))
	if failures > 0 {
		os.Exit(1)
	}
}
