// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON baseline: benchmark name → ns/op, B/op, allocs/op. The
// Makefile's bench target pipes through it to regenerate
// BENCH_baseline.json; keys are sorted so diffs stay reviewable.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark's measured cost per operation.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches e.g.
//
//	BenchmarkFig7Events256-8   1   45123456 ns/op   123456 B/op   1234 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so baselines compare across hosts.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out, failed, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: input contains a FAIL line")
		os.Exit(1)
	}
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(enc))
}

func parse(r *os.File) (map[string]Entry, bool, error) {
	out := map[string]Entry{}
	failed := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL") {
			failed = true
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, failed, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		e := Entry{NsPerOp: ns}
		if m[3] != "" {
			e.BytesPerOp, _ = strconv.ParseInt(m[3], 10, 64)
		}
		if m[4] != "" {
			e.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		out[m[1]] = e
	}
	return out, failed, sc.Err()
}
