// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON baseline: benchmark name → ns/op, B/op, allocs/op. The
// Makefile's bench target pipes through it to regenerate
// BENCH_baseline.json; keys are sorted so diffs stay reviewable.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark's measured cost per operation.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches the leading, fixed part of a benchmark result line:
//
//	BenchmarkFig7Events256-8   1   45123456 ns/op   ...
//
// The -8 GOMAXPROCS suffix is stripped so baselines compare across
// hosts. B/op and allocs/op are extracted separately from the remainder
// because b.ReportMetric custom metrics (steps-exited/op, halo-latency-ms,
// ...) print *between* ns/op and B/op, so a single anchored regex with
// optional trailing groups silently drops the allocation columns.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

var (
	bytesCol  = regexp.MustCompile(`(\d+) B/op`)
	allocsCol = regexp.MustCompile(`(\d+) allocs/op`)
)

func main() {
	assertAllocs := flag.String("assert-allocs", "",
		"comma-separated benchmark-name substrings; each must match at "+
			"least one benchmark reporting nonzero allocs/op, else exit 1")
	flag.Parse()

	out, failed, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: input contains a FAIL line")
		os.Exit(1)
	}
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if bad := checkAllocs(out, *assertAllocs); len(bad) > 0 {
		fmt.Fprintf(os.Stderr,
			"benchjson: no benchmark matching %q reported nonzero allocs/op "+
				"(is the harness dropping the -benchmem columns?)\n",
			strings.Join(bad, ", "))
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(enc))
}

// checkAllocs returns the -assert-allocs substrings not satisfied by any
// parsed benchmark with nonzero allocs/op.
func checkAllocs(out map[string]Entry, spec string) []string {
	var bad []string
	for _, want := range strings.Split(spec, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		ok := false
		for name, e := range out {
			if strings.Contains(name, want) && e.AllocsPerOp > 0 {
				ok = true
				break
			}
		}
		if !ok {
			bad = append(bad, want)
		}
	}
	return bad
}

func parse(r *os.File) (map[string]Entry, bool, error) {
	out := map[string]Entry{}
	failed := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL") {
			failed = true
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, failed, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		e := Entry{NsPerOp: ns}
		rest := m[3]
		if b := bytesCol.FindStringSubmatch(rest); b != nil {
			e.BytesPerOp, _ = strconv.ParseInt(b[1], 10, 64)
		}
		if a := allocsCol.FindStringSubmatch(rest); a != nil {
			e.AllocsPerOp, _ = strconv.ParseInt(a[1], 10, 64)
		}
		out[m[1]] = e
	}
	return out, failed, sc.Err()
}
