package iocontainer

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datatap"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/smartpointer"
)

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// bench reports the quantity under study as a custom metric so the
// comparison is visible in the -bench output.

// BenchmarkAblationManagedVsUnmanaged compares the Fig. 9 workload with
// and without the global manager's policy: the managed run lets more
// steps exit and blocks the simulation's writer less.
func BenchmarkAblationManagedVsUnmanaged(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		b.ReportAllocs()
		var exits int64
		var blocked sim.Time
		for i := 0; i < b.N; i++ {
			cfg := core.Config{
				SimNodes:     1024,
				StagingNodes: 24,
				Specs:        core.SpecsWithBondsModel(smartpointer.ModelParallel),
				Sizes:        core.DefaultSizes(24),
				Steps:        60,
				CrackStep:    -1,
				Seed:         int64(42 + i),
				Policy: core.PolicyConfig{
					DisableManagement: disable,
					OfflinePatience:   10,
				},
			}
			rt, err := core.Build(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := rt.Run()
			if err != nil {
				b.Fatal(err)
			}
			exits += res.Exits
			blocked += res.WriterBlocked
		}
		b.ReportMetric(float64(exits)/float64(b.N), "steps-exited/op")
		b.ReportMetric(blocked.Seconds()/float64(b.N), "writer-blocked-s/op")
	}
	b.Run("managed", func(b *testing.B) { run(b, false) })
	b.Run("unmanaged", func(b *testing.B) { run(b, true) })
}

// BenchmarkResizeRRvsParallel contrasts the cost of growing a round-robin
// container (launch new replicas, exchange metadata) against growing an
// MPI-style parallel one (complete teardown and relaunch) — the §III-D
// distinction.
func BenchmarkResizeRRvsParallel(b *testing.B) {
	run := func(b *testing.B, model smartpointer.ComputeModel) {
		b.ReportAllocs()
		var overhead sim.Time // resize cost excluding the aprun launch
		for i := 0; i < b.N; i++ {
			rt, err := core.Build(core.Config{
				SimNodes:     64,
				StagingNodes: 24,
				Specs:        core.SpecsWithBondsModel(model),
				Sizes:        map[string]int{"helper": 4, "bonds": 4, "csym": 2, "cna": 1},
				Steps:        10,
				CrackStep:    -1,
				Seed:         int64(7 + i),
				Policy:       core.PolicyConfig{DisableManagement: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			var elapsed sim.Time
			rt.Engine().Go("driver", func(p *sim.Proc) {
				p.Sleep(30 * sim.Second)
				nodes := rt.TakeSpare(4)
				start := p.Now()
				resp := rt.GM().Increase(p, "bonds", nodes)
				if resp == nil {
					b.Error("increase failed")
					return
				}
				elapsed = p.Now() - start - resp.Launch
			})
			rt.Engine().RunUntil(400 * sim.Second)
			rt.Shutdown()
			overhead += elapsed
		}
		b.ReportMetric(overhead.Milliseconds()/float64(b.N), "non-launch-virtual-ms/op")
	}
	b.Run("rr", func(b *testing.B) { run(b, smartpointer.ModelRR) })
	b.Run("parallel", func(b *testing.B) { run(b, smartpointer.ModelParallel) })
}

// BenchmarkAblationPullScheduling reproduces the §III-C contention
// argument: when a backlog of staged payloads sits on a compute node,
// unscheduled pulls hammer its NIC back-to-back and the application's own
// communication (here a halo-exchange message stream) queues behind them;
// DataStager-style scheduling (one pull in flight at a time) keeps the
// application's message latency bounded.
func BenchmarkAblationPullScheduling(b *testing.B) {
	run := func(b *testing.B, tokens int) {
		b.ReportAllocs()
		var haloTotal sim.Time
		var haloCount int
		for i := 0; i < b.N; i++ {
			eng := sim.NewEngine(int64(5 + i))
			mach := NewMachine(eng, func() MachineConfig {
				c := Franklin()
				c.Nodes = 12
				return c
			}())
			ch := datatap.NewChannel(eng, mach, "bench", datatap.Config{
				HomeNode:   1,
				PullTokens: tokens,
			})
			w := ch.NewWriter(0)
			// Build a backlog of staged 256 MiB payloads on node 0.
			eng.Go("writer", func(p *sim.Proc) {
				for s := int64(0); s < 24; s++ {
					w.Write(p, s, 256<<20, nil)
				}
			})
			// Eight readers drain the backlog concurrently.
			for r := 0; r < 8; r++ {
				rd := ch.NewReader(1 + r%8)
				eng.Go("reader", func(p *sim.Proc) {
					for {
						if _, ok := rd.FetchTimeout(p, 10*sim.Second); !ok {
							return
						}
					}
				})
			}
			// The application keeps exchanging 1 MiB halo messages from
			// the same node; their latency is what contention costs it.
			eng.Go("halo", func(p *sim.Proc) {
				p.Sleep(500 * sim.Millisecond)
				for k := 0; k < 50; k++ {
					start := p.Now()
					mach.Send(p, 0, 9, 1<<20)
					haloTotal += p.Now() - start
					haloCount++
					p.Sleep(20 * sim.Millisecond)
				}
				ch.Close()
			})
			eng.Run()
		}
		b.ReportMetric(haloTotal.Milliseconds()/float64(haloCount), "halo-latency-ms")
	}
	b.Run("unscheduled", func(b *testing.B) { run(b, 0) })
	b.Run("scheduled-1", func(b *testing.B) { run(b, 1) })
}

// BenchmarkAblationTransactionalTrades measures the overhead of wrapping
// resource trades in D2T control transactions.
func BenchmarkAblationTransactionalTrades(b *testing.B) {
	run := func(b *testing.B, txn bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := core.Config{
				SimNodes:     256,
				StagingNodes: 13,
				Sizes:        core.DefaultSizes(13),
				Steps:        20,
				CrackStep:    -1,
				Seed:         int64(42 + i),
				Policy:       core.PolicyConfig{TransactionalTrades: txn},
			}
			rt, err := core.Build(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rt.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("plain", func(b *testing.B) { run(b, false) })
	b.Run("transactional", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationDeliveryGuarantee prices the at-least-once data
// plane against best-effort under the same hostile schedule: the writer
// node is partitioned for most of the run, so mid-run pulls fail, and a
// tiny descriptor queue keeps the channel under spill pressure. The
// best-effort leg loses the steps whose pulls failed; the at-least-once
// leg redelivers them (retention + repair loop + spill-to-disk) and the
// run fails outright if even one step goes unaccounted — the bench output
// is the cost of that guarantee, and `make bench` ratchets it.
func BenchmarkAblationDeliveryGuarantee(b *testing.B) {
	const steps = 24
	run := func(b *testing.B, alo bool) {
		b.ReportAllocs()
		var delivered, lost, redelivered, spilled int64
		for i := 0; i < b.N; i++ {
			eng := sim.NewEngine(int64(9 + i))
			mc := Franklin()
			mc.Nodes = 8
			mach := NewMachine(eng, mc)
			sched, err := fault.NewSchedule(eng, fault.Config{
				Seed: int64(9 + i),
				Partitions: []fault.Partition{
					{From: 5 * sim.Second, Until: 40 * sim.Second, Nodes: []int{2}},
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			mach.SetFaults(sched)
			cfg := datatap.Config{HomeNode: 1, QueueCap: 4}
			if alo {
				cfg.Delivery.Mode = datatap.DeliveryAtLeastOnce
			}
			ch := datatap.NewChannel(eng, mach, "bench", cfg)
			w := ch.NewWriter(2)
			r := ch.NewReader(1)
			eng.Go("writer", func(p *sim.Proc) {
				for s := int64(1); s <= steps; s++ {
					w.Write(p, s, 1<<20, nil)
				}
			})
			var got int64
			eng.Go("reader", func(p *sim.Proc) {
				p.Sleep(2 * sim.Second)
				for got < steps {
					m, ok := r.FetchTimeout(p, 60*sim.Second)
					if !ok {
						break
					}
					got++
					if alo {
						r.Ack(p, m)
					}
					p.Sleep(sim.Second) // spread pulls across the partition window
				}
				ch.Close()
			})
			eng.Run()
			delivered += got
			lost += steps - got
			d := ch.DeliverySnapshot()
			redelivered += d.StepsRedelivered
			spilled += d.StepsSpilled
			if alo {
				if got != steps {
					b.Fatalf("at-least-once delivered %d of %d steps", got, steps)
				}
				if n := d.Unaccounted(); n != 0 {
					b.Fatalf("at-least-once left %d steps unaccounted: %+v", n, d)
				}
			}
		}
		b.ReportMetric(float64(delivered)/float64(b.N), "steps-delivered/op")
		b.ReportMetric(float64(lost)/float64(b.N), "steps-lost/op")
		b.ReportMetric(float64(redelivered)/float64(b.N), "steps-redelivered/op")
		b.ReportMetric(float64(spilled)/float64(b.N), "steps-spilled/op")
	}
	b.Run("best-effort", func(b *testing.B) { run(b, false) })
	b.Run("at-least-once", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationPlacement previews the paper's future-work question:
// container placement on a topology-aware machine. The same pipeline
// traffic pattern (simulation -> helper -> bonds -> csym) is run with the
// staging nodes adjacent to the simulation partition versus scattered
// across a 3-D torus; the data-movement time difference is what
// topology-aware placement would recover.
func BenchmarkAblationPlacement(b *testing.B) {
	run := func(b *testing.B, scattered bool) {
		b.ReportAllocs()
		var moveTime sim.Time
		for i := 0; i < b.N; i++ {
			eng := sim.NewEngine(int64(3 + i))
			mc := Franklin()
			mc.Nodes = 1000
			mc.Topology = cluster.NewTorus3D(10, 10, 10)
			mc.PerHopLatency = sim.Millisecond
			mach := NewMachine(eng, mc)
			// Stage placement: the simulation's I/O aggregator sits at
			// node 0; helper/bonds/csym staging nodes are either its
			// torus neighbors or the far reaches of the machine.
			helper := []int{1, 2, 3, 4}
			bonds := []int{5, 6}
			csym := []int{7}
			if scattered {
				helper = []int{999, 555, 370, 841}
				bonds = []int{444, 788}
				csym = []int{655}
			}
			eng.Go("traffic", func(p *sim.Proc) {
				start := p.Now()
				for step := 0; step < 20; step++ {
					h := helper[step%len(helper)]
					mach.Send(p, 0, h, 4<<20)
					bd := bonds[step%len(bonds)]
					mach.Send(p, h, bd, 4<<20)
					mach.Send(p, bd, csym[0], 1<<20)
				}
				moveTime += p.Now() - start
			})
			eng.Run()
		}
		b.ReportMetric(moveTime.Milliseconds()/float64(b.N), "data-movement-virtual-ms/op")
	}
	b.Run("co-located", func(b *testing.B) { run(b, false) })
	b.Run("scattered", func(b *testing.B) { run(b, true) })
}
