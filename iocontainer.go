// Package iocontainer is a Go implementation of the I/O container
// middleware of Dayal et al., "I/O Containers: Managing the Data Analytics
// and Visualization Pipelines of High End Codes" (IPDPS 2013), together
// with every substrate the paper's evaluation depends on: a
// discrete-event machine model, an EVPath-style event overlay, the
// DataTap/DataStager asynchronous staged transport, an ADIOS-like I/O API
// over a BP-like pack format, a LAMMPS molecular-dynamics workload
// surrogate, the SmartPointer analytics (Bonds, CSym, CNA, Helper — real
// algorithms plus calibrated cost models), and D2T doubly-distributed
// transactions.
//
// The central abstraction is the managed pipeline: analytics components
// run inside containers on a staging-area partition, local managers
// measure per-step latency and answer resource queries, and a global
// manager enforces SLAs by growing bottlenecks from spare nodes, stealing
// from over-provisioned containers, or taking stages offline with
// provenance-stamped disk output.
//
// Quick start:
//
//	cfg := iocontainer.Config{
//		SimNodes:     256,
//		StagingNodes: 13,
//		Sizes:        iocontainer.DefaultSizes(13),
//		Steps:        20,
//	}
//	rt, err := iocontainer.Build(cfg)
//	if err != nil { ... }
//	res, err := rt.Run()
//	// res.Actions holds the management decisions; res.Recorder the
//	// per-container latency series.
//
// Everything runs on a deterministic virtual clock: scenarios spanning
// thousands of virtual seconds execute in milliseconds and reproduce
// exactly from a seed.
package iocontainer

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/lammps"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/smartpointer"
	"repro/internal/txn"
)

// Time is virtual simulation time (nanoseconds).
type Time = sim.Time

// Common virtual durations.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
)

// Simulation kernel.
type (
	// Engine is the discrete-event scheduler everything runs on.
	Engine = sim.Engine
	// Proc is a simulated process.
	Proc = sim.Proc
)

// NewEngine returns a deterministic simulation engine.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// NewMachine builds a simulated machine under the engine.
func NewMachine(eng *Engine, cfg MachineConfig) *Machine { return cluster.New(eng, cfg) }

// NewTransaction builds a D2T transaction over the machine (mach may be
// nil for a cost-free protocol run).
func NewTransaction(eng *Engine, mach *Machine, cfg TxnConfig) (*Transaction, error) {
	return txn.New(eng, mach, cfg)
}

// Pipeline assembly and management (the paper's contribution).
type (
	// Config assembles a complete managed pipeline run.
	Config = core.Config
	// PolicyConfig tunes the global manager's SLA enforcement.
	PolicyConfig = core.PolicyConfig
	// ComponentSpec describes one analytics stage.
	ComponentSpec = core.ComponentSpec
	// Runtime is an assembled pipeline.
	Runtime = core.Runtime
	// Result summarizes a completed run.
	Result = core.Result
	// Action is one management decision.
	Action = core.Action
	// Container is a managed component instance.
	Container = core.Container
	// GlobalManager enforces cross-container SLAs.
	GlobalManager = core.GlobalManager
)

// Build assembles a managed pipeline from cfg.
func Build(cfg Config) (*Runtime, error) { return core.Build(cfg) }

// LoadScenario reads a JSON scenario file (pipeline structure, stage
// dependencies, cost models, policy) into a runnable Config — the
// configuration-file path the paper's global manager is driven by.
func LoadScenario(path string) (Config, error) { return scenario.LoadFile(path) }

// LoadScenarioJSON parses a JSON scenario from r.
func LoadScenarioJSON(r io.Reader) (Config, error) { return scenario.Load(r) }

// KindCustom is the kind for user-defined analytics actions; see the
// Kind constants for the SmartPointer toolkit's own actions.
const KindCustom = smartpointer.KindCustom

// DefaultSpecs returns the paper's four-stage SmartPointer pipeline.
func DefaultSpecs() []ComponentSpec { return core.DefaultSpecs() }

// SpecsWithBondsModel returns DefaultSpecs with Bonds under the given
// compute model (the larger weak-scaling runs use Parallel).
func SpecsWithBondsModel(m ComputeModel) []ComponentSpec {
	return core.SpecsWithBondsModel(m)
}

// DefaultSizes returns the paper's initial container sizing for a staging
// area of the given width.
func DefaultSizes(stagingNodes int) map[string]int { return core.DefaultSizes(stagingNodes) }

// Analytics characteristics and cost models (paper Table I).
type (
	// Kind identifies a SmartPointer action.
	Kind = smartpointer.Kind
	// ComputeModel is how a component uses resources.
	ComputeModel = smartpointer.ComputeModel
	// Characteristics is one Table I row.
	Characteristics = smartpointer.Characteristics
	// CostModel predicts per-step service time at scale.
	CostModel = smartpointer.CostModel
)

// SmartPointer action kinds.
const (
	KindHelper = smartpointer.KindHelper
	KindBonds  = smartpointer.KindBonds
	KindCSym   = smartpointer.KindCSym
	KindCNA    = smartpointer.KindCNA
)

// Compute models.
const (
	ModelSerial   = smartpointer.ModelSerial
	ModelRR       = smartpointer.ModelRR
	ModelParallel = smartpointer.ModelParallel
	ModelTree     = smartpointer.ModelTree
)

// Table1 returns the paper's Table I rows.
func Table1() []Characteristics { return smartpointer.Table1() }

// DefaultCostModels returns the calibrated per-component cost models.
func DefaultCostModels() map[Kind]CostModel { return smartpointer.DefaultCostModels() }

// Workload scaling (paper Table II).
type (
	// Scale relates simulation node count to atoms and output volume.
	Scale = lammps.Scale
	// Workload drives the simulated LAMMPS run.
	Workload = lammps.Workload
)

// Table2 returns the paper's Table II rows.
func Table2() []Scale { return lammps.Table2() }

// ScaleForNodes returns the workload scale for a node count.
func ScaleForNodes(nodes int) Scale { return lammps.ScaleForNodes(nodes) }

// Fault injection: deterministic, seeded schedules of node crashes, link
// degradation, partitions, control-message drops, and replica stalls.
// Attach one via Config.Faults; containers then self-heal crashed
// replicas from the spare pool (disable with
// PolicyConfig.DisableSelfHealing).
type (
	// FaultConfig schedules deterministic fault injection.
	FaultConfig = fault.Config
	// FaultCrash fail-stops one node at a virtual time.
	FaultCrash = fault.Crash
	// FaultLink degrades every link inside a time window.
	FaultLink = fault.LinkFault
	// FaultPartition severs a node set from the rest inside a window.
	FaultPartition = fault.Partition
	// FaultDrop drops control messages with a probability inside a window.
	FaultDrop = fault.DropWindow
	// FaultStall freezes a node's replica inside a window.
	FaultStall = fault.Stall
	// FaultStats summarizes injected-fault activity after a run.
	FaultStats = fault.Stats
)

// Machine models.
type (
	// MachineConfig describes a simulated machine.
	MachineConfig = cluster.Config
	// Machine is a simulated high-end machine.
	Machine = cluster.Machine
)

// Franklin returns the NERSC Franklin Cray XT4 machine model (the
// container experiments' testbed).
func Franklin() MachineConfig { return cluster.Franklin() }

// RedSky returns the Sandia RedSky machine model (the transaction
// experiments' testbed).
func RedSky() MachineConfig { return cluster.RedSky() }

// Transactions (D2T, paper Fig. 6).
type (
	// TxnConfig parameterizes one doubly-distributed transaction.
	TxnConfig = txn.Config
	// TxnStats reports a completed transaction.
	TxnStats = txn.Stats
	// Transaction is a runnable D2T instance.
	Transaction = txn.Transaction
	// TxnOutcome is a transaction decision.
	TxnOutcome = txn.Outcome
)

// Transaction outcomes.
const (
	TxnCommitted = txn.Committed
	TxnAborted   = txn.Aborted
)

// Experiments (the paper's tables and figures).
type (
	// Experiment regenerates one paper artifact.
	Experiment = experiments.Experiment
	// ExperimentOutput is an experiment's rendered result.
	ExperimentOutput = experiments.Output
)

// Experiments returns every table/figure generator in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID returns the named experiment ("table1", "fig7", ...).
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// Recording.
type (
	// Recorder collects named time series and markers.
	Recorder = metrics.Recorder
	// Table renders aligned text/CSV tables.
	Table = metrics.Table
)
