package iocontainer

import (
	"testing"

	"repro/internal/analysis"
)

// BenchmarkIocheckModule is the wall-time budget for `iocheck ./...`: one
// iteration loads and type-checks the whole module, builds the CFG and
// CHA call-graph layer, and runs all eight analyzers. It rides in `make
// bench` so a regression in the whole-program analysis (an unbounded
// summary fixpoint, a quadratic CFG walk) shows up in BENCH_baseline.json
// next to the scenario benchmarks.
func BenchmarkIocheckModule(b *testing.B) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkgs, err := analysis.LoadModule(root)
		if err != nil {
			b.Fatal(err)
		}
		diags := analysis.Run(pkgs, analysis.Analyzers())
		if n := len(analysis.Unsuppressed(diags)); n != 0 {
			b.Fatalf("module has %d unsuppressed findings", n)
		}
	}
}
