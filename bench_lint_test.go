package iocontainer

import (
	"testing"

	"repro/internal/analysis"
)

// BenchmarkIocheckModule is the wall-time budget for `iocheck ./...`: one
// iteration loads and type-checks the whole module, builds the CFG and
// CHA call-graph layer, and runs all thirteen analyzers. It rides in `make
// bench` so a regression in the whole-program analysis (an unbounded
// summary fixpoint, a quadratic CFG walk) shows up in BENCH_baseline.json
// next to the scenario benchmarks.
func BenchmarkIocheckModule(b *testing.B) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkgs, err := analysis.LoadModule(root)
		if err != nil {
			b.Fatal(err)
		}
		diags := analysis.Run(pkgs, analysis.Analyzers())
		if n := len(analysis.Unsuppressed(diags)); n != 0 {
			b.Fatalf("module has %d unsuppressed findings", n)
		}
	}
}

// BenchmarkIocheckHotalloc budgets the perf layer alone: heat
// propagation over the CHA call graph plus the escape fixpoint, run via
// the hotalloc and hotbox rules over the whole module. Module loading
// is paid inside the loop (the rules re-derive facts from a fresh load,
// matching how `iocheck -rules hotalloc` runs), so this tracks the
// end-to-end cost of a perf-only lint pass.
func BenchmarkIocheckHotalloc(b *testing.B) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkgs, err := analysis.LoadModule(root)
		if err != nil {
			b.Fatal(err)
		}
		diags := analysis.Run(pkgs, []*analysis.Analyzer{analysis.HotAlloc, analysis.HotBox})
		if n := len(analysis.Unsuppressed(diags)); n != 0 {
			b.Fatalf("module has %d unsuppressed perf findings", n)
		}
	}
}

// BenchmarkIocheckRoundflow budgets the protocol-lifecycle layer alone:
// the interprocedural round-summary fixpoint over the CHA call graph
// plus the roundflow/roundterm CFG passes over the whole module. Module
// loading is paid inside the loop, matching `iocheck -rules
// roundflow,roundterm`, so this tracks the end-to-end cost of a
// lifecycle-only lint pass.
func BenchmarkIocheckRoundflow(b *testing.B) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkgs, err := analysis.LoadModule(root)
		if err != nil {
			b.Fatal(err)
		}
		diags := analysis.Run(pkgs, []*analysis.Analyzer{analysis.RoundFlow, analysis.RoundTerm})
		if n := len(analysis.Unsuppressed(diags)); n != 0 {
			b.Fatalf("module has %d unsuppressed lifecycle findings", n)
		}
	}
}
